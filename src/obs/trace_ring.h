// Lock-free per-context event tracer.
//
// A TraceRing is a fixed-size ring of 24-byte timestamped events with
// exactly one writer: the thread currently advancing the owning context
// (context advance runs under the context lock, so writes are serialized
// and the lock's ordering publishes them). record() is a bounds-check, a
// category-mask test, one clock read and one array store — no atomics, no
// allocation — and the ring overwrites its oldest events when full, so a
// long run keeps the most recent window.
//
// Readers (the exporter) run after the traced threads have quiesced
// (benches export after stop()/finalize()); the ring makes no attempt to
// support concurrent read-while-write beyond tearing individual events.
//
// Build-time gate: compiling with -DPAMIX_OBS=OFF (PAMIX_OBS_ENABLED=0)
// turns every record call into an empty inline function and enable() into
// a no-op, so the tracer compiles to nothing and rings never allocate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/clock.h"

#ifndef PAMIX_OBS_ENABLED
#define PAMIX_OBS_ENABLED 1
#endif

namespace pamix::obs {

/// Event kinds recorded by the runtime. Adding one means also adding its
/// name and category to trace_ev_name()/trace_ev_cat() in registry.cpp.
enum class TraceEv : std::uint8_t {
  SendEagerBegin,
  SendRdzvBegin,
  SendShmBegin,
  SendComplete,
  RdzvRts,
  RdzvPull,
  RdzvDone,
  AdvanceBatch,  // span: one advance() pass that processed >0 events
  WorkDrain,     // instant: arg = work items run in one pass
  CommSleep,     // span: a commthread's wakeup-unit sleep
  CommWake,      // instant: the store that ended the sleep arrived
  CommSpin,      // span: the spin window between the last event and arming
  CommFastWake,  // instant: a sleep ended by the handoff doorbell store
  CommSteal,     // instant: a blocking call advanced a covered context; arg = events
  CollPhase,     // instant: a collective-network round fired; arg = round
  CollSliceMath, // span: parallel local reduce of one pipeline slice; arg = bytes
  CollArm,       // instant: master armed a network round; arg = round
  CollCopyOut,   // span: peer copy-out of a completed slice; arg = bytes
  RectChunkRelay, // span: one rect-bcast chunk forwarded down a color tree; arg = bytes
  MpiMatch,      // span: one arrival through the MPI matcher; arg = seq
  AmDispatch,    // span: one AM handler execution; arg = payload bytes
  AmAggFlush,    // instant: one aggregation buffer flushed; arg = records
  AmCreditStall, // instant: a send parked on zero credits; arg = peer index
  Count,
};

/// Category bits for PAMIX_TRACE_EVENTS filtering.
enum TraceCat : std::uint32_t {
  kCatSend = 1u << 0,
  kCatRdzv = 1u << 1,
  kCatAdvance = 1u << 2,
  kCatWork = 1u << 3,
  kCatCommthread = 1u << 4,
  kCatCollective = 1u << 5,
  kCatMpi = 1u << 6,
  kCatAm = 1u << 7,
};

const char* trace_ev_name(TraceEv ev);
TraceCat trace_ev_cat(TraceEv ev);

struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint32_t dur_ns = 0;  // 0 = instant event, else a span
  std::uint32_t arg = 0;     // event-specific payload (bytes, count, round)
  TraceEv type = TraceEv::Count;
};

class TraceRing {
 public:
  TraceRing() = default;  // disabled: record() is a no-op until enable()

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

#if PAMIX_OBS_ENABLED

  /// Allocate the ring. Not thread safe; call before the writer starts.
  void enable(std::size_t capacity, std::uint32_t category_mask = ~0u) {
    if (capacity == 0) return;
    ring_.resize(capacity);
    mask_ = category_mask;
  }

  bool enabled() const { return !ring_.empty(); }

  /// Single-writer append of an instant event.
  void record(TraceEv ev, std::uint32_t arg = 0) { record_at(ev, now_ns(), 0, arg); }

  /// Single-writer append of a span that started at `start_ns` and ends now.
  void record_span(TraceEv ev, std::uint64_t start_ns, std::uint32_t arg = 0) {
    const std::uint64_t end = now_ns();
    const std::uint64_t dur = end > start_ns ? end - start_ns : 0;
    record_at(ev, start_ns, dur > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(dur),
              arg);
  }

  void record_at(TraceEv ev, std::uint64_t ts_ns, std::uint32_t dur_ns, std::uint32_t arg) {
    if (ring_.empty() || (mask_ & trace_ev_cat(ev)) == 0) return;
    TraceEvent& e = ring_[static_cast<std::size_t>(head_ % ring_.size())];
    e.ts_ns = ts_ns;
    e.dur_ns = dur_ns;
    e.arg = arg;
    e.type = ev;
    ++head_;
  }

  /// Events ever recorded (including ones the ring has since overwritten).
  std::uint64_t recorded() const { return head_; }

  /// Events currently held.
  std::size_t size() const {
    return ring_.empty() ? 0 : static_cast<std::size_t>(std::min<std::uint64_t>(head_, ring_.size()));
  }

  std::size_t capacity() const { return ring_.size(); }

  /// Copy out the held events, oldest first. Reader-side; call only when
  /// the writer has quiesced.
  std::vector<TraceEvent> drain_copy() const {
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::uint64_t first = head_ - n;
    for (std::uint64_t i = first; i < head_; ++i) {
      out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
    }
    return out;
  }

#else  // PAMIX_OBS_ENABLED == 0: the tracer compiles to nothing.

  void enable(std::size_t, std::uint32_t = ~0u) {}
  bool enabled() const { return false; }
  void record(TraceEv, std::uint32_t = 0) {}
  void record_span(TraceEv, std::uint64_t, std::uint32_t = 0) {}
  void record_at(TraceEv, std::uint64_t, std::uint32_t, std::uint32_t) {}
  std::uint64_t recorded() const { return 0; }
  std::size_t size() const { return 0; }
  std::size_t capacity() const { return 0; }
  std::vector<TraceEvent> drain_copy() const { return {}; }

#endif

 private:
#if PAMIX_OBS_ENABLED
  std::vector<TraceEvent> ring_;
  std::uint64_t head_ = 0;  // plain: single writer, readers quiesce first
  std::uint32_t mask_ = ~0u;
#endif
};

}  // namespace pamix::obs
