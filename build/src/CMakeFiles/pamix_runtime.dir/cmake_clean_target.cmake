file(REMOVE_RECURSE
  "libpamix_runtime.a"
)
