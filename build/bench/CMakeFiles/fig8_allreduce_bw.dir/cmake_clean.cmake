file(REMOVE_RECURSE
  "CMakeFiles/fig8_allreduce_bw.dir/fig8_allreduce_bw.cpp.o"
  "CMakeFiles/fig8_allreduce_bw.dir/fig8_allreduce_bw.cpp.o.d"
  "fig8_allreduce_bw"
  "fig8_allreduce_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_allreduce_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
