#include "hw/mu.h"

#include <algorithm>
#include <cassert>

#include "hw/wakeup_unit.h"

namespace pamix::hw {

namespace {

/// Copy a descriptor's header fields into a packet for the slice at `off`.
void frame_packet(MuPacket& pkt, const MuDescriptor& desc, int src_node, std::size_t off) {
  pkt.type = desc.type;
  pkt.routing = desc.routing;
  pkt.hints = desc.hints;
  pkt.deposit = desc.deposit;
  pkt.src_node = src_node;
  pkt.dest_node = desc.dest_node;
  pkt.rec_fifo = desc.rec_fifo;
  pkt.sw = desc.sw;
  pkt.sw.packet_offset = static_cast<std::uint32_t>(off);
  pkt.remote_payload = desc.remote_payload;
  pkt.remote_inj_fifo = desc.remote_inj_fifo;
  if (desc.type == MuPacketType::DirectPut) {
    pkt.put_dest = desc.put_dest + off;
    pkt.rec_counter = desc.rec_counter;
  }
}

}  // namespace

MessagingUnit::MessagingUnit(int node_id, NetworkPort* port, WakeupUnit* wakeup,
                             std::size_t inj_capacity, std::size_t rec_capacity)
    : node_id_(node_id),
      port_(port),
      wakeup_(wakeup),
      obs_(obs::Registry::instance().create("node" + std::to_string(node_id) + ".mu",
                                            /*pid=*/node_id, /*tid=*/0, /*want_ring=*/false)),
      svc_pool_(&obs_.pvars) {
  inj_.reserve(kInjFifoCount);
  rec_.reserve(kRecFifoCount);
  for (int i = 0; i < kInjFifoCount; ++i) {
    inj_.push_back(std::make_unique<InjFifo>(inj_capacity));
  }
  for (int i = 0; i < kRecFifoCount; ++i) {
    rec_.push_back(std::make_unique<RecFifo>(rec_capacity));
  }
  pending_.resize(kInjFifoCount);
  inj_pools_.resize(kInjFifoCount);
}

std::vector<int> MessagingUnit::allocate_inj_fifos(int count) {
  std::lock_guard<std::mutex> g(alloc_mu_);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count && next_inj_ < kInjFifoCount; ++i) {
    out.push_back(next_inj_++);
  }
  return out;
}

std::vector<int> MessagingUnit::allocate_rec_fifos(int count) {
  std::lock_guard<std::mutex> g(alloc_mu_);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count && next_rec_ < kRecFifoCount; ++i) {
    out.push_back(next_rec_++);
  }
  return out;
}

int MessagingUnit::inj_fifos_available() const { return kInjFifoCount - next_inj_; }
int MessagingUnit::rec_fifos_available() const { return kRecFifoCount - next_rec_; }

core::BufferPool& MessagingUnit::inj_pool(int fifo_idx) {
  // Created on first use by the FIFO's single owning context; no lock
  // needed (distinct indices are written by distinct owners, and the
  // vector itself never resizes after construction).
  auto& p = inj_pools_[static_cast<std::size_t>(fifo_idx)];
  if (p == nullptr) p = std::make_unique<core::BufferPool>(&obs_.pvars);
  return *p;
}

MessagingUnit::PendingInj& MessagingUnit::pending_slot(int fifo_idx) {
  // Created on first use by the FIFO's single owning context; same
  // ownership argument as inj_pool() below.
  auto& p = pending_[static_cast<std::size_t>(fifo_idx)];
  if (p == nullptr) p = std::make_unique<PendingInj>();
  return *p;
}

int MessagingUnit::advance_injection(const std::vector<int>& fifo_indices) {
  int injected = 0;
  for (int idx : fifo_indices) injected += advance_injection(idx);
  return injected;
}

int MessagingUnit::advance_injection(int idx) {
  int injected = 0;
  PendingInj& slot = pending_slot(idx);
  if (slot.active) {
    // Resume a descriptor that was backpressured mid-message.
    if (!inject_resumable(idx)) return injected;
    ++injected;
  }
  MuDescriptor desc;
  while (inj_fifo(idx).pop(desc)) {
    slot.desc = std::move(desc);
    slot.off = 0;
    slot.active = true;
    if (!inject_resumable(idx)) break;  // backpressure: stop this FIFO
    ++injected;
  }
  return injected;
}

bool MessagingUnit::receive(MuPacket&& pkt) {
  rx_count_[static_cast<std::size_t>(pkt.type)].fetch_add(1, std::memory_order_relaxed);
  switch (pkt.type) {
    case MuPacketType::MemoryFifo: {
      RecFifo& rf = rec_fifo(pkt.rec_fifo);
      if (!rf.deliver(std::move(pkt))) {
        rx_count_[static_cast<std::size_t>(MuPacketType::MemoryFifo)].fetch_sub(
            1, std::memory_order_relaxed);
        return false;
      }
      if (wakeup_ != nullptr) wakeup_->notify_write(&rf.delivered_count());
      return true;
    }
    case MuPacketType::DirectPut: {
      if (!pkt.payload.empty()) {
        assert(pkt.put_dest != nullptr);
        std::memcpy(pkt.put_dest, pkt.payload.data(), pkt.payload.size());
      }
      if (pkt.rec_counter != nullptr) {
        pkt.rec_counter->decrement(static_cast<std::int64_t>(pkt.payload.size()));
        if (wakeup_ != nullptr) wakeup_->notify_write(pkt.rec_counter);
      }
      return true;
    }
    case MuPacketType::RemoteGet: {
      // The packet's payload is itself a descriptor. The MU services
      // remote gets autonomously — no target software runs — so execute
      // the contained descriptor immediately (DMA-read the requested
      // buffer and direct-put it back to the requester).
      assert(pkt.remote_payload != nullptr);
      return inject_one(*pkt.remote_payload);
    }
  }
  return false;
}

bool MessagingUnit::inject_one(MuDescriptor& desc) {
  // Single-shot injection, bypassing the FIFOs: remote-get servicing and
  // unit tests. May run on any thread, so payload staging comes from the
  // shared service pool under its mutex. Assumes no backpressure.
  std::size_t off = 0;
  do {
    const std::size_t chunk = std::min(kMaxPacketPayload, desc.payload_bytes - off);
    MuPacket pkt;
    frame_packet(pkt, desc, node_id_, off);
    if (desc.payload != nullptr && chunk > 0) {
      std::lock_guard<L2AtomicMutex> g(svc_mu_);
      pkt.payload = svc_pool_.acquire_copy(desc.payload + off, chunk);
    }
    if (!port_->transmit(std::move(pkt))) return false;
    obs_.pvars.add(obs::Pvar::PacketsInjected);
    off += chunk;
  } while (off < desc.payload_bytes);
  if (desc.on_injected) desc.on_injected();
  return true;
}

bool MessagingUnit::inject_resumable(int fifo_idx) {
  PendingInj& slot = *pending_[static_cast<std::size_t>(fifo_idx)];
  MuDescriptor& desc = slot.desc;
  std::size_t& off = slot.off;
  core::BufferPool& pool = inj_pool(fifo_idx);
  do {
    const std::size_t chunk = std::min(kMaxPacketPayload, desc.payload_bytes - off);
    MuPacket pkt;
    frame_packet(pkt, desc, node_id_, off);
    if (desc.payload != nullptr && chunk > 0) {
      pkt.payload = pool.acquire_copy(desc.payload + off, chunk);
    }
    if (!port_->transmit(std::move(pkt))) return false;  // keep slot, resume later
    obs_.pvars.add(obs::Pvar::PacketsInjected);
    off += chunk;
  } while (off < desc.payload_bytes);
  if (desc.on_injected) desc.on_injected();
  slot.desc = MuDescriptor{};  // drop staged buffers/callbacks promptly
  slot.active = false;
  return true;
}

}  // namespace pamix::hw
