#include "hw/wakeup_unit.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace pamix::hw {
namespace {

TEST(WakeupUnit, NotifyInsideRangeWakesWaiter) {
  WakeupUnit wu;
  std::uint64_t region[4] = {};
  const auto h = wu.watch(region, sizeof(region));

  std::atomic<bool> woke{false};
  const std::uint64_t armed = wu.arm(h);
  std::thread waiter([&] {
    wu.wait(h, armed);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  region[2] = 1;
  wu.notify_write(&region[2]);
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(WakeupUnit, NotifyOutsideRangeDoesNotWake) {
  WakeupUnit wu;
  std::uint64_t inside = 0;
  std::uint64_t outside = 0;
  const auto h = wu.watch(&inside, sizeof(inside));
  const std::uint64_t armed = wu.arm(h);
  wu.notify_write(&outside);
  // Epoch unchanged: wait_for should time out.
  EXPECT_FALSE(wu.wait_for(h, armed, std::chrono::milliseconds(30)));
}

TEST(WakeupUnit, WriteBeforeWaitIsNotLost) {
  // The arm/check/wait discipline: a store between arm and wait must make
  // the subsequent wait return immediately.
  WakeupUnit wu;
  std::uint64_t word = 0;
  const auto h = wu.watch(&word, sizeof(word));
  const std::uint64_t armed = wu.arm(h);
  wu.notify_write(&word);
  wu.wait(h, armed);  // returns immediately; deadlock here = test timeout
  SUCCEED();
}

TEST(WakeupUnit, MultiRangeWatchWakesOnAnyRange) {
  WakeupUnit wu;
  std::uint64_t a = 0, b = 0, c = 0;
  const auto h = wu.watch_many({{&a, sizeof(a)}, {&b, sizeof(b)}});
  std::uint64_t armed = wu.arm(h);
  wu.notify_write(&c);
  EXPECT_FALSE(wu.wait_for(h, armed, std::chrono::milliseconds(20)));
  armed = wu.arm(h);
  wu.notify_write(&b);
  EXPECT_TRUE(wu.wait_for(h, armed, std::chrono::milliseconds(1000)));
}

TEST(WakeupUnit, NotifyWatchWakesUnconditionally) {
  WakeupUnit wu;
  std::uint64_t word = 0;
  const auto h = wu.watch(&word, sizeof(word));
  const std::uint64_t armed = wu.arm(h);
  std::thread waiter([&] { wu.wait(h, armed); });
  wu.notify_watch(h);
  waiter.join();
  SUCCEED();
}

TEST(WakeupUnit, ManyWaitersAllWake) {
  WakeupUnit wu;
  std::uint64_t word = 0;
  const auto h = wu.watch(&word, sizeof(word));
  const std::uint64_t armed = wu.arm(h);
  std::atomic<int> woke{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i) {
    ts.emplace_back([&] {
      wu.wait(h, armed);
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  wu.notify_write(&word);
  for (auto& t : ts) t.join();
  EXPECT_EQ(woke.load(), 8);
}

}  // namespace
}  // namespace pamix::hw
