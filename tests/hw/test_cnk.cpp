#include "hw/cnk.h"

#include <gtest/gtest.h>

#include <array>

#include "hw/global_interrupt.h"

namespace pamix::hw {
namespace {

TEST(GlobalVaTable, TranslateRequiresRegistration) {
  GlobalVaTable t;
  std::array<std::byte, 64> buf{};
  EXPECT_EQ(t.translate(0, buf.data(), buf.size()), nullptr);
  const int id = t.register_segment(0, buf.data(), buf.size());
  EXPECT_EQ(t.translate(0, buf.data(), buf.size()), buf.data());
  // Wrong owner misses.
  EXPECT_EQ(t.translate(1, buf.data(), buf.size()), nullptr);
  // Out-of-range access misses.
  EXPECT_EQ(t.translate(0, buf.data() + 32, 64), nullptr);
  t.unregister_segment(id);
  EXPECT_EQ(t.translate(0, buf.data(), buf.size()), nullptr);
}

TEST(GlobalVaTable, RegisterAllExposesWholeAddressSpace) {
  GlobalVaTable t;
  std::array<std::byte, 8> buf{};
  t.register_all(3);
  EXPECT_EQ(t.translate(3, buf.data(), buf.size()), buf.data());
  EXPECT_EQ(t.translate(2, buf.data(), buf.size()), nullptr);
}

TEST(GlobalVaTable, SegmentCountTracksLiveSegments) {
  GlobalVaTable t;
  std::array<std::byte, 16> a{}, b{};
  const int ia = t.register_segment(0, a.data(), a.size());
  t.register_segment(1, b.data(), b.size());
  EXPECT_EQ(t.segment_count(), 2u);
  t.unregister_segment(ia);
  EXPECT_EQ(t.segment_count(), 1u);
}

TEST(HwThreadMap, SixtyFourThreadsPerNode) {
  HwThreadMap m;
  EXPECT_EQ(m.free_threads(), kHwThreadsPerNode);
  for (int i = 0; i < kHwThreadsPerNode; ++i) {
    EXPECT_TRUE(m.claim_app_thread(0).has_value());
  }
  EXPECT_FALSE(m.claim_app_thread(0).has_value());
  EXPECT_FALSE(m.claim_commthread(0).has_value());
}

TEST(HwThreadMap, CommthreadAccountingAndPriorities) {
  HwThreadMap m;
  const auto app = m.claim_app_thread(0);
  const auto comm = m.claim_commthread(0);
  ASSERT_TRUE(app && comm);
  EXPECT_EQ(m.commthreads(), 1);
  EXPECT_EQ(m.priority(*comm), ThreadPriority::CommLowest);
  m.set_priority(*comm, ThreadPriority::CommHighest);
  EXPECT_EQ(m.priority(*comm), ThreadPriority::CommHighest);
  m.release(*comm);
  EXPECT_EQ(m.commthreads(), 0);
  EXPECT_EQ(m.free_threads(), kHwThreadsPerNode - 1);
}

TEST(GiBarrier, FiresWhenAllArrive) {
  GiBarrier b(3);
  const auto t1 = b.arrive();
  EXPECT_FALSE(b.done(t1));
  const auto t2 = b.arrive();
  EXPECT_FALSE(b.done(t2));
  const auto t3 = b.arrive();
  EXPECT_TRUE(b.done(t1));
  EXPECT_TRUE(b.done(t2));
  EXPECT_TRUE(b.done(t3));
}

TEST(GiBarrier, GenerationsAreReusable) {
  GiBarrier b(2);
  for (int round = 0; round < 5; ++round) {
    const auto ta = b.arrive();
    const auto tb = b.arrive();
    EXPECT_TRUE(b.done(ta));
    EXPECT_TRUE(b.done(tb));
  }
}

TEST(GlobalInterruptNetwork, ProgramAndReprogramSlots) {
  GlobalInterruptNetwork net(16);
  net.program(3, 4);
  EXPECT_EQ(net.barrier(3)->participants(), 4);
  net.program(3, 8);  // reuse after deoptimize
  EXPECT_EQ(net.barrier(3)->participants(), 8);
}

}  // namespace
}  // namespace pamix::hw
