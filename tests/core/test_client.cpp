#include "core/client.h"

#include <gtest/gtest.h>

#include <set>

#include "core/context.h"
#include "runtime/machine.h"

namespace pamix::pami {
namespace {

TEST(FifoPlan, DeterministicAndDisjointAcrossContexts) {
  ClientConfig cfg;
  cfg.contexts_per_task = 4;
  cfg.send_fifos_per_context = 8;
  const FifoPlan plan(cfg, /*ppn=*/4);
  std::set<int> inj, rec;
  for (int p = 0; p < 4; ++p) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_TRUE(rec.insert(plan.rec_fifo(p, c)).second) << "rec fifo shared";
      for (int j = 0; j < 8; ++j) {
        const int f = plan.inj_fifo(p, c, j);
        EXPECT_GE(f, 0);
        EXPECT_LT(f, hw::kInjFifoCount);
        EXPECT_TRUE(inj.insert(f).second) << "inj fifo shared";
      }
    }
  }
  EXPECT_EQ(inj.size(), 4u * 4u * 8u);
}

TEST(FifoPlan, ClientsPartitionTheMuStatically) {
  ClientConfig a;
  a.client_id = 0;
  a.max_clients = 2;
  a.contexts_per_task = 2;
  a.send_fifos_per_context = 4;
  ClientConfig b = a;
  b.client_id = 1;
  const FifoPlan pa(a, 2), pb(b, 2);
  std::set<int> fa, fb;
  for (int p = 0; p < 2; ++p) {
    for (int c = 0; c < 2; ++c) {
      fa.insert(pa.rec_fifo(p, c));
      fb.insert(pb.rec_fifo(p, c));
      for (int j = 0; j < 4; ++j) {
        fa.insert(1000 + pa.inj_fifo(p, c, j));
        fb.insert(1000 + pb.inj_fifo(p, c, j));
      }
    }
  }
  for (int f : fa) EXPECT_EQ(fb.count(f), 0u) << "clients share MU resource " << f;
}

TEST(FifoPlan, BothEndsComputeTheSamePlan) {
  ClientConfig cfg;
  cfg.contexts_per_task = 3;
  const FifoPlan sender_side(cfg, 4);
  const FifoPlan receiver_side(cfg, 4);
  for (int p = 0; p < 4; ++p) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(sender_side.rec_fifo(p, c), receiver_side.rec_fifo(p, c));
    }
  }
}

TEST(ClientWorld, CreatesAllClientsWithContexts) {
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 2);
  ClientConfig cfg;
  cfg.contexts_per_task = 3;
  ClientWorld world(machine, cfg);
  EXPECT_EQ(world.task_count(), 4);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(world.client(t).context_count(), 3);
    EXPECT_EQ(world.client(t).task(), t);
    for (int c = 0; c < 3; ++c) {
      const Endpoint ep = world.client(t).context(c).endpoint();
      EXPECT_EQ(ep.task, t);
      EXPECT_EQ(ep.context, c);
    }
  }
}

TEST(ClientWorld, GlobalVaRegisteredForEveryProcess) {
  runtime::Machine machine(hw::TorusGeometry({1, 1, 1, 1, 1}), 4);
  ClientWorld world(machine, ClientConfig{});
  int x = 0;
  for (int p = 0; p < 4; ++p) {
    EXPECT_NE(machine.node(0).global_va().translate(p, &x, sizeof(x)), nullptr);
  }
}

TEST(ClientWorld, AdvanceAllTouchesEveryContext) {
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  ClientConfig cfg;
  cfg.contexts_per_task = 2;
  ClientWorld world(machine, cfg);
  bool ran0 = false, ran1 = false;
  world.client(0).context(0).post([&] { ran0 = true; });
  world.client(0).context(1).post([&] { ran1 = true; });
  world.client(0).advance_all();
  EXPECT_TRUE(ran0);
  EXPECT_TRUE(ran1);
}

TEST(ClientWorld, CrossContextMessaging) {
  // Endpoint addressing reaches a specific context, not just a task.
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  ClientConfig cfg;
  cfg.contexts_per_task = 2;
  ClientWorld world(machine, cfg);
  int hit_ctx0 = 0, hit_ctx1 = 0;
  world.client(1).context(0).set_dispatch(
      3, [&](Context&, const void*, std::size_t, const void*, std::size_t, std::size_t,
             Endpoint, RecvDescriptor*) { ++hit_ctx0; });
  world.client(1).context(1).set_dispatch(
      3, [&](Context&, const void*, std::size_t, const void*, std::size_t, std::size_t,
             Endpoint, RecvDescriptor*) { ++hit_ctx1; });
  Context& src = world.client(0).context(0);
  ASSERT_EQ(src.send_immediate(3, Endpoint{1, 1}, nullptr, 0, nullptr, 0), Result::Success);
  for (int i = 0; i < 100 && hit_ctx1 == 0; ++i) {
    world.client(1).context(0).advance();
    world.client(1).context(1).advance();
  }
  EXPECT_EQ(hit_ctx0, 0);
  EXPECT_EQ(hit_ctx1, 1);
}

}  // namespace
}  // namespace pamix::pami
