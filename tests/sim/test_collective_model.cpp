#include "sim/collective_model.h"

#include <gtest/gtest.h>

namespace pamix::sim {
namespace {

/// The paper's 2048-node partition (two racks).
CollectiveModel paper_machine() {
  return CollectiveModel(hw::TorusGeometry::racks(2), BgqCostModel{});
}

TEST(CollectiveModel, BarrierLatencyMatchesFigure6At2048Nodes) {
  const CollectiveModel m = paper_machine();
  // Paper: 2.7 / 4.0 / 4.2 us at ppn = 1 / 4 / 16.
  EXPECT_NEAR(m.barrier_latency_us(1), 2.7, 0.15);
  EXPECT_NEAR(m.barrier_latency_us(4), 4.0, 0.2);
  EXPECT_NEAR(m.barrier_latency_us(16), 4.2, 0.2);
}

TEST(CollectiveModel, BarrierLatencyGrowsWithMachineDepth) {
  const BgqCostModel c;
  const CollectiveModel small(hw::TorusGeometry::midplane(), c);
  const CollectiveModel big(hw::TorusGeometry::racks(2), c);
  EXPECT_LT(small.barrier_latency_us(1), big.barrier_latency_us(1));
}

TEST(CollectiveModel, AllreduceLatencyMatchesFigure7At2048Nodes) {
  const CollectiveModel m = paper_machine();
  // Paper: 5.5 / 5.0 / 5.3 us at ppn = 1 / 4 / 16 — note the dip at 4.
  EXPECT_NEAR(m.allreduce_latency_us(1), 5.5, 0.25);
  EXPECT_NEAR(m.allreduce_latency_us(4), 5.0, 0.25);
  EXPECT_NEAR(m.allreduce_latency_us(16), 5.3, 0.25);
  EXPECT_LT(m.allreduce_latency_us(4), m.allreduce_latency_us(1));
  EXPECT_LT(m.allreduce_latency_us(4), m.allreduce_latency_us(16));
}

TEST(CollectiveModel, AllreduceThroughputMatchesFigure8Peaks) {
  const CollectiveModel m = paper_machine();
  // Paper peaks: 1704 MB/s @ ppn1/8MB, 1693 @ ppn4/2MB, 1643 @ ppn16/512KB.
  EXPECT_NEAR(m.allreduce_throughput_mb_s(1, 8u << 20), 1704, 40);
  EXPECT_NEAR(m.allreduce_throughput_mb_s(4, 2u << 20), 1693, 60);
  EXPECT_NEAR(m.allreduce_throughput_mb_s(16, 512u << 10), 1643, 60);
}

TEST(CollectiveModel, AllreduceFallsOffWhenSpillingL2) {
  const CollectiveModel m = paper_machine();
  // ppn=16: past the L2-resident peak the DDR pipeline takes over.
  const double at_peak = m.allreduce_throughput_mb_s(16, 512u << 10);
  const double spilled = m.allreduce_throughput_mb_s(16, 8u << 20);
  EXPECT_LT(spilled, 0.6 * at_peak);
}

TEST(CollectiveModel, BcastThroughputMatchesFigure9Peaks) {
  const CollectiveModel m = paper_machine();
  // Paper: 1728 @ ppn1/32MB (96% of peak), 1722 @ ppn4/4MB, 1701 @ ppn16/1MB.
  EXPECT_NEAR(m.bcast_throughput_mb_s(1, 32u << 20), 1728, 40);
  EXPECT_NEAR(m.bcast_throughput_mb_s(4, 4u << 20), 1722, 60);
  EXPECT_NEAR(m.bcast_throughput_mb_s(16, 1u << 20), 1701, 60);
}

TEST(CollectiveModel, BcastPpn16FallsOffAtLargeSizes) {
  const CollectiveModel m = paper_machine();
  const double at_peak = m.bcast_throughput_mb_s(16, 1u << 20);
  const double spilled = m.bcast_throughput_mb_s(16, 16u << 20);
  EXPECT_LT(spilled, 0.5 * at_peak);
}

TEST(CollectiveModel, ThroughputRisesWithMessageSizeBeforePeak) {
  const CollectiveModel m = paper_machine();
  double prev = 0;
  for (std::size_t bytes = 8; bytes <= (1u << 20); bytes *= 8) {
    const double cur = m.bcast_throughput_mb_s(1, bytes);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(CollectiveModel, SmallAllreduceLatencyDominatedBySoftwareAndTree) {
  const CollectiveModel m = paper_machine();
  // An 8B and a 64B allreduce should be nearly identical (latency-bound).
  EXPECT_NEAR(m.allreduce_latency_us(1, 8), m.allreduce_latency_us(1, 64), 0.1);
}

}  // namespace
}  // namespace pamix::sim
