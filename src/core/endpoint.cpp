#include "core/endpoint.h"

#include <cassert>

namespace pamix {

bool Endpoint::bind() {
  const std::thread::id me = std::this_thread::get_id();
  std::thread::id expected{};
  if (owner_.compare_exchange_strong(expected, me, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    if (pvars_ != nullptr) pvars_->add(obs::Pvar::EpBinds);
    return true;
  }
  return expected == me;  // idempotent re-bind by the owner
}

bool Endpoint::unbind() {
  const std::thread::id me = std::this_thread::get_id();
  std::thread::id expected = me;
  return owner_.compare_exchange_strong(expected, std::thread::id{},
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
}

std::size_t Endpoint::advance(int iterations) {
  assert(bound_to_caller() && "Endpoint::advance from a non-owning thread");
  return ctx_.advance(iterations);
}

}  // namespace pamix
