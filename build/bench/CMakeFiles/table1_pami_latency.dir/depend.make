# Empty dependencies file for table1_pami_latency.
# This may be replaced when dependencies are built.
