// Ablation — eager→rendezvous crossover swept through the PAMIX_EAGER_LIMIT
// runtime knob. Each row rebuilds the world with a different env override,
// round-trips a fixed message size across the MU path, and verifies against
// the per-protocol pvar domains that the expected protocol actually carried
// the traffic (eager domain counts vs rdzv domain counts). The host timing
// column locates the crossover the knob exists to tune.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "core/client.h"
#include "core/context.h"
#include "proto/protocol.h"
#include "runtime/machine.h"

namespace {

using namespace pamix;

struct SweepRow {
  std::size_t limit;       // PAMIX_EAGER_LIMIT applied
  std::size_t effective;   // what the world actually configured
  std::uint64_t eager;     // sends counted on the ".eager" domain
  std::uint64_t rdzv;      // sends counted on the ".rdzv" domain
  double us;               // host one-way time
};

SweepRow run_point(std::size_t limit, std::size_t bytes, int iters) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", limit);
  ::setenv("PAMIX_EAGER_LIMIT", buf, 1);

  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  pami::ClientConfig cfg;
  cfg.contexts_per_task = 1;
  pami::ClientWorld world(machine, cfg);
  pami::Context& tx = world.client(0).context(0);
  pami::Context& rx = world.client(1).context(0);

  std::vector<std::byte> payload(bytes, std::byte{0x5A});
  std::vector<std::byte> sink(bytes);
  int got = 0;
  rx.set_dispatch(1, [&](pami::Context&, const void*, std::size_t, const void* pipe,
                         std::size_t, std::size_t total, pami::Endpoint,
                         pami::RecvDescriptor* recv) {
    if (recv != nullptr) {
      recv->buffer = sink.data();
      recv->bytes = total;
      recv->on_complete = [&] { ++got; };
    } else {
      ++got;
    }
  });

  const obs::PvarSnapshot e0 = tx.proto_obs(proto::ProtocolKind::Eager).pvars.snapshot();
  const obs::PvarSnapshot r0 = tx.proto_obs(proto::ProtocolKind::Rdzv).pvars.snapshot();

  pami::SendParams p;
  p.dispatch = 1;
  p.dest = pami::Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = bytes;

  bench::Stopwatch sw;
  int sent = 0;
  for (int i = 0; i < iters; ++i) {
    bool done = false;
    p.on_remote_done = [&] { done = true; };
    if (tx.send(p) != pami::Result::Success) continue;
    ++sent;
    while (!done || got < sent) {
      tx.advance();
      rx.advance();
    }
  }
  const double us = sw.elapsed_us() / (iters > 0 ? iters : 1);

  SweepRow row;
  row.limit = limit;
  row.effective = world.config().eager_limit;
  const obs::PvarSnapshot ed = tx.proto_obs(proto::ProtocolKind::Eager).pvars.snapshot() - e0;
  const obs::PvarSnapshot rd = tx.proto_obs(proto::ProtocolKind::Rdzv).pvars.snapshot() - r0;
  row.eager = ed[obs::Pvar::SendsEager];
  row.rdzv = rd[obs::Pvar::SendsRdzv];
  row.us = us;
  return row;
}

}  // namespace

int main() {
  using namespace pamix;
  bench::header("ABLATION — eager limit swept via PAMIX_EAGER_LIMIT");

  constexpr std::size_t kBytes = 8192;
  constexpr int kIters = 200;
  std::printf("Fixed %s messages, limit swept below and above (host clock):\n\n",
              bench::fmt_bytes(kBytes).c_str());
  std::printf("%-12s %-12s %8s %8s %10s %10s\n", "limit", "effective", "eager", "rdzv",
              "protocol", "us/msg");
  std::printf("----------------------------------------------------------------\n");

  bool verified = true;
  for (std::size_t limit : {std::size_t{512}, std::size_t{2048}, std::size_t{8192},
                            std::size_t{32768}, std::size_t{131072}}) {
    const SweepRow r = run_point(limit, kBytes, kIters);
    const bool expect_eager = kBytes <= r.effective;
    const char* proto = r.eager > 0 ? "eager" : "rdzv";
    // Pvar cross-check: the protocol the limit selects is the one whose
    // domain counted the sends — and the other domain counted none.
    const bool ok = expect_eager ? (r.eager == kIters && r.rdzv == 0)
                                 : (r.rdzv == kIters && r.eager == 0);
    verified = verified && ok && r.effective == r.limit;
    std::printf("%-12zu %-12zu %8llu %8llu %10s %10.2f%s\n", r.limit, r.effective,
                static_cast<unsigned long long>(r.eager),
                static_cast<unsigned long long>(r.rdzv), proto, r.us, ok ? "" : "  MISMATCH");
  }
  ::unsetenv("PAMIX_EAGER_LIMIT");

  std::printf("\nProtocol selection %s per-protocol pvar domains.\n",
              verified ? "verified against" : "DISAGREES with");
  std::printf("Eager stages a full copy per message; rendezvous trades an RTS round\n"
              "trip for an RDMA pull — the crossover is where the copy cost of %s\n"
              "overtakes the handshake.\n",
              bench::fmt_bytes(kBytes).c_str());
  bench::obs_finish();
  return verified ? 0 : 1;
}
