// ProgressEngine composition: idle/pending-state coherence, per-protocol
// telemetry domains, and the PAMIX_*_LIMIT runtime overrides.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/context.h"
#include "obs/pvar.h"
#include "proto/protocol.h"
#include "runtime/machine.h"

namespace pamix::pami {
namespace {

/// Scoped setenv: tests in one process must not leak knobs into each other.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i * 31);
  return v;
}

TEST(ProgressEngine, IdleAndPendingStateAgreeWhenQuiescent) {
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  ClientConfig c;
  c.contexts_per_task = 1;
  ClientWorld world(machine, c);
  Context& tx = world.client(0).context(0);
  Context& rx = world.client(1).context(0);

  EXPECT_TRUE(tx.idle());
  EXPECT_FALSE(tx.has_pending_state());

  int got = 0;
  rx.set_dispatch(1, [&](Context&, const void*, std::size_t, const void*, std::size_t,
                         std::size_t, Endpoint, RecvDescriptor*) { ++got; });
  ASSERT_EQ(tx.send_immediate(1, Endpoint{1, 0}, nullptr, 0, nullptr, 0), Result::Success);
  // In flight: the receiver has pollable work.
  EXPECT_FALSE(rx.idle());
  EXPECT_TRUE(rx.has_pending_state());
  while (got < 1) {
    tx.advance();
    rx.advance();
  }
  // Quiescent again: both predicates return to false together — the old
  // Context tracked them separately and they could (and did) drift.
  EXPECT_TRUE(tx.idle());
  EXPECT_TRUE(rx.idle());
  EXPECT_FALSE(tx.has_pending_state());
  EXPECT_FALSE(rx.has_pending_state());
}

TEST(ProgressEngine, PendingSendStateClearsOnRemoteCompletion) {
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  ClientConfig c;
  c.contexts_per_task = 1;
  c.eager_limit = 128;
  ClientWorld world(machine, c);
  Context& tx = world.client(0).context(0);
  Context& rx = world.client(1).context(0);

  const auto payload = pattern(4096);  // rendezvous
  std::vector<std::byte> recv_buf(payload.size());
  bool complete = false;
  rx.set_dispatch(2, [&](Context&, const void*, std::size_t, const void*, std::size_t,
                         std::size_t total, Endpoint, RecvDescriptor* recv) {
    recv->buffer = recv_buf.data();
    recv->bytes = total;
    recv->on_complete = [&] { complete = true; };
  });

  SendParams p;
  p.dispatch = 2;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  bool remote_done = false;
  p.on_remote_done = [&] { remote_done = true; };
  ASSERT_EQ(tx.send(p), Result::Success);
  // The origin's send state (awaiting DONE) counts as pending state.
  EXPECT_TRUE(tx.has_pending_state());
  for (int i = 0; i < 300 && !remote_done; ++i) {
    tx.advance();
    rx.advance();
  }
  ASSERT_TRUE(complete);
  ASSERT_TRUE(remote_done);
  // Once the send state retires, nothing lingers: the old implementation
  // held has_pending_state() true forever after the first MU send.
  EXPECT_FALSE(tx.has_pending_state());
  EXPECT_FALSE(rx.has_pending_state());
}

TEST(ProgressEngine, ProtocolCountersLandOnTheirOwnDomains) {
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  ClientConfig c;
  c.contexts_per_task = 1;
  c.eager_limit = 512;
  ClientWorld world(machine, c);
  Context& tx = world.client(0).context(0);
  Context& rx = world.client(1).context(0);

  int got = 0;
  std::vector<std::byte> sink(8192);
  rx.set_dispatch(3, [&](Context&, const void*, std::size_t, const void*, std::size_t,
                         std::size_t total, Endpoint, RecvDescriptor* recv) {
    if (recv != nullptr) {
      recv->buffer = sink.data();
      recv->bytes = total;
      recv->on_complete = [&] { ++got; };
    } else {
      ++got;
    }
  });

  const auto small = pattern(64);
  const auto big = pattern(4096);
  SendParams p;
  p.dispatch = 3;
  p.dest = Endpoint{1, 0};
  p.data = small.data();
  p.data_bytes = small.size();
  ASSERT_EQ(tx.send(p), Result::Success);
  p.data = big.data();
  p.data_bytes = big.size();
  ASSERT_EQ(tx.send(p), Result::Success);
  for (int i = 0; i < 300 && got < 2; ++i) {
    tx.advance();
    rx.advance();
  }
  ASSERT_EQ(got, 2);

  const obs::Domain& eager = tx.proto_obs(proto::ProtocolKind::Eager);
  const obs::Domain& rdzv = tx.proto_obs(proto::ProtocolKind::Rdzv);
  const obs::Domain& shm = tx.proto_obs(proto::ProtocolKind::Shm);
  EXPECT_EQ(eager.pvars.get(obs::Pvar::SendsEager), 1u);
  EXPECT_EQ(rdzv.pvars.get(obs::Pvar::SendsRdzv), 1u);
  EXPECT_EQ(rdzv.pvars.get(obs::Pvar::RdzvRtsSent), 1u);
  EXPECT_EQ(shm.pvars.get(obs::Pvar::SendsShm), 0u);
  // Domain names are children of the context's domain.
  EXPECT_EQ(eager.name, tx.obs().name + ".eager");
  // The aggregate accessor still spans all protocols.
  EXPECT_EQ(tx.sends_initiated(), 2u);
}

TEST(EagerLimitEnv, OverrideRoutesProtocolSelection) {
  EnvGuard g("PAMIX_EAGER_LIMIT", "64");
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  ClientConfig c;
  c.contexts_per_task = 1;
  c.eager_limit = 4096;  // env must win over this
  ClientWorld world(machine, c);
  EXPECT_EQ(world.config().eager_limit, 64u);
  Context& tx = world.client(0).context(0);
  Context& rx = world.client(1).context(0);

  std::vector<std::byte> sink(1024);
  int got = 0;
  rx.set_dispatch(4, [&](Context&, const void*, std::size_t, const void*, std::size_t,
                         std::size_t total, Endpoint, RecvDescriptor* recv) {
    if (recv != nullptr) {
      recv->buffer = sink.data();
      recv->bytes = total;
      recv->on_complete = [&] { ++got; };
    } else {
      ++got;
    }
  });

  // 256 bytes: eager under the configured 4096, rendezvous under env's 64.
  const auto payload = pattern(256);
  SendParams p;
  p.dispatch = 4;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  ASSERT_EQ(tx.send(p), Result::Success);
  for (int i = 0; i < 300 && got < 1; ++i) {
    tx.advance();
    rx.advance();
  }
  ASSERT_EQ(got, 1);
  EXPECT_EQ(tx.proto_obs(proto::ProtocolKind::Rdzv).pvars.get(obs::Pvar::SendsRdzv), 1u);
  EXPECT_EQ(tx.proto_obs(proto::ProtocolKind::Eager).pvars.get(obs::Pvar::SendsEager), 0u);
  // The effective limit is pvar-visible on the eager domain.
  EXPECT_EQ(tx.proto_obs(proto::ProtocolKind::Eager).pvars.get(obs::Pvar::ConfigEagerLimit),
            64u);
}

TEST(EagerLimitEnv, SuffixesAndShmOverride) {
  EnvGuard g1("PAMIX_EAGER_LIMIT", "8K");
  EnvGuard g2("PAMIX_SHM_EAGER_LIMIT", "1M");
  runtime::Machine machine(hw::TorusGeometry({1, 1, 1, 1, 1}), 1);
  ClientWorld world(machine, ClientConfig{});
  EXPECT_EQ(world.config().eager_limit, 8u * 1024);
  EXPECT_EQ(world.config().shm_eager_limit, 1u << 20);
  Context& ctx = world.client(0).context(0);
  EXPECT_EQ(ctx.proto_obs(proto::ProtocolKind::Shm).pvars.get(obs::Pvar::ConfigShmEagerLimit),
            1u << 20);
}

TEST(EagerLimitEnv, InvalidValuesKeepConfiguredLimit) {
  runtime::Machine machine(hw::TorusGeometry({1, 1, 1, 1, 1}), 1);
  ClientConfig c;
  c.eager_limit = 2048;
  c.shm_eager_limit = 512;
  {
    EnvGuard g1("PAMIX_EAGER_LIMIT", "banana");
    EnvGuard g2("PAMIX_SHM_EAGER_LIMIT", "4G");  // unknown suffix
    ClientWorld world(machine, c);
    EXPECT_EQ(world.config().eager_limit, 2048u);
    EXPECT_EQ(world.config().shm_eager_limit, 512u);
  }
  {
    EnvGuard g("PAMIX_EAGER_LIMIT", "999999999999999");  // over the cap
    ClientWorld world(machine, c);
    EXPECT_EQ(world.config().eager_limit, 2048u);
  }
}

}  // namespace
}  // namespace pamix::pami
