# Empty dependencies file for pamix_mpi.
# This may be replaced when dependencies are built.
