
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/test_classroute.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_classroute.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_classroute.cpp.o.d"
  "/root/repo/tests/hw/test_cnk.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_cnk.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_cnk.cpp.o.d"
  "/root/repo/tests/hw/test_l2_atomics.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_l2_atomics.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_l2_atomics.cpp.o.d"
  "/root/repo/tests/hw/test_mu.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_mu.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_mu.cpp.o.d"
  "/root/repo/tests/hw/test_torus.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_torus.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_torus.cpp.o.d"
  "/root/repo/tests/hw/test_wakeup_unit.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_wakeup_unit.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_wakeup_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pamix_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
