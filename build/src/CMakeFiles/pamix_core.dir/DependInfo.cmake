
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/CMakeFiles/pamix_core.dir/core/client.cpp.o" "gcc" "src/CMakeFiles/pamix_core.dir/core/client.cpp.o.d"
  "/root/repo/src/core/collectives.cpp" "src/CMakeFiles/pamix_core.dir/core/collectives.cpp.o" "gcc" "src/CMakeFiles/pamix_core.dir/core/collectives.cpp.o.d"
  "/root/repo/src/core/commthread.cpp" "src/CMakeFiles/pamix_core.dir/core/commthread.cpp.o" "gcc" "src/CMakeFiles/pamix_core.dir/core/commthread.cpp.o.d"
  "/root/repo/src/core/context.cpp" "src/CMakeFiles/pamix_core.dir/core/context.cpp.o" "gcc" "src/CMakeFiles/pamix_core.dir/core/context.cpp.o.d"
  "/root/repo/src/core/geometry.cpp" "src/CMakeFiles/pamix_core.dir/core/geometry.cpp.o" "gcc" "src/CMakeFiles/pamix_core.dir/core/geometry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pamix_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
