#!/usr/bin/env bash
# Tier-1 verification: build + full test suite in the default configuration,
# then prove the obs tracer compiles out cleanly with -DPAMIX_OBS=OFF
# (build + tests again — the pvar-backed accessors must keep working).
#
# Usage: scripts/check.sh [build-dir-prefix]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "==> [1/2] default build (PAMIX_OBS=ON) + tests"
cmake -B "${prefix}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${prefix}" -j "${jobs}"
ctest --test-dir "${prefix}" --output-on-failure -j "${jobs}"

echo "==> [2/2] tracer compiled out (-DPAMIX_OBS=OFF) + tests"
cmake -B "${prefix}-obs-off" -S . -DCMAKE_BUILD_TYPE=Release -DPAMIX_OBS=OFF
cmake --build "${prefix}-obs-off" -j "${jobs}"
ctest --test-dir "${prefix}-obs-off" --output-on-failure -j "${jobs}"

echo "==> all checks passed"
