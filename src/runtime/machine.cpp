#include "runtime/machine.h"

#include <exception>
#include <mutex>

#include "core/env.h"
#include "runtime/des_network.h"

namespace pamix::runtime {

bool FunctionalNetwork::transmit(hw::MuPacket&& pkt) {
  const std::size_t payload = pkt.payload.size();
  if (pkt.deposit) {
    // Deposit-bit line broadcast: the packet is consumed by every node the
    // deterministic route passes through, as well as the final
    // destination. (The hardware restricts this to single-dimension
    // routes; memory-FIFO deposits land in the same FIFO id per node.)
    std::vector<int> hops;
    machine_->geometry().for_each_route_link(
        pkt.src_node, pkt.dest_node, [&](const hw::TorusLink& l) {
          const int next = machine_->geometry().neighbor(l.node, l.dim, l.dir);
          hops.push_back(next);
        });
    bool ok = true;
    for (int node : hops) {
      hw::MuPacket copy = pkt.clone();
      // A deposited direct-put writes the same offset in each node's
      // (process-local) destination; our single-address-space model keeps
      // one target, so deposit is only meaningful for memory-FIFO packets.
      ok = machine_->node(node).mu().receive(std::move(copy)) && ok;
      packets_.fetch_add(1, std::memory_order_relaxed);
      bytes_.fetch_add(payload, std::memory_order_relaxed);
    }
    return ok;
  }
  Node& dest = machine_->node(pkt.dest_node);
  if (!dest.mu().receive(std::move(pkt))) return false;
  packets_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(payload, std::memory_order_relaxed);
  return true;
}

Machine::Machine(hw::TorusGeometry geometry, int ppn, MachineOptions options)
    : geom_(std::move(geometry)),
      ppn_(ppn),
      options_(options),
      gi_(hw::kClassRoutesPerNode),
      routes_(hw::kClassRoutesPerNode),
      engines_(hw::kClassRoutesPerNode) {
  assert(ppn_ >= 1 && ppn_ <= 64);
  // Pick the byte-moving backend: an explicit MachineOptions choice wins,
  // otherwise the PAMIX_NET run-time switch (default functional).
  const hw::NetBackendKind kind =
      options_.backend.has_value()
          ? *options_.backend
          : static_cast<hw::NetBackendKind>(
                core::env_choice_or("PAMIX_NET", 0, {"functional", "des"}));
  std::uint64_t seed = 0;
  if (kind == hw::NetBackendKind::Des) {
    DesNetwork::Options dopt;
    seed = options_.sim_seed.has_value()
               ? *options_.sim_seed
               : static_cast<std::uint64_t>(
                     core::env_int_or("PAMIX_SIM_SEED", 0, 0, 1 << 30));
    dopt.seed = seed;
    dopt.link_skew_pct =
        options_.link_skew_pct.has_value()
            ? *options_.link_skew_pct
            : static_cast<double>(core::env_int_or("PAMIX_SIM_SKEW_PCT", 0, 0, 90));
    dopt.auto_advance = options_.des_auto_advance;
    auto des = std::make_unique<DesNetwork>(this, dopt);
    des_ = des.get();
    backend_ = std::move(des);
  } else {
    backend_ = std::make_unique<FunctionalNetwork>(this);
  }
  // Record the effective transport in this machine's telemetry domain, so
  // a run's pvar dump shows which backend produced it.
  obs::Domain& md = obs::Registry::instance().create("machine", /*pid=*/-1, /*tid=*/0,
                                                     /*want_ring=*/false);
  md.pvars.add(obs::Pvar::ConfigNetBackend, static_cast<std::uint64_t>(kind));
  if (kind == hw::NetBackendKind::Des) md.pvars.add(obs::Pvar::ConfigSimSeed, seed);
  // Tell the spin loops whether the task threads will oversubscribe the
  // host: more tasks than hardware threads means a waited-for peer is
  // often not running, and waiters must yield instead of burning quanta.
  const auto hc = std::thread::hardware_concurrency();
  hw::oversubscribed_hint().store(hc == 0 || task_count() > static_cast<int>(hc),
                                  std::memory_order_relaxed);
  nodes_.reserve(static_cast<std::size_t>(geom_.node_count()));
  for (int n = 0; n < geom_.node_count(); ++n) {
    nodes_.push_back(std::make_unique<Node>(n, backend_.get(), options_));
  }
  // Classroute 0 is system-programmed over the whole partition at boot
  // (the COMM_WORLD route), exactly as CNK does.
  program_classroute(0, hw::TorusRectangle::whole_machine(geom_));
}

Machine::~Machine() = default;

void Machine::program_classroute(int id, const hw::TorusRectangle& rect) {
  assert(id >= 0 && id < hw::kClassRoutesPerNode);
  routes_[static_cast<std::size_t>(id)] = std::make_unique<hw::ClassRoute>(geom_, rect);
  engines_[static_cast<std::size_t>(id)] =
      std::make_unique<CollectiveNetworkEngine>(rect.node_count());
  gi_.program(id, rect.node_count());
}

void Machine::clear_classroute(int id) {
  assert(id >= 0 && id < hw::kClassRoutesPerNode);
  routes_[static_cast<std::size_t>(id)].reset();
  engines_[static_cast<std::size_t>(id)].reset();
}

void Machine::run_spmd(const std::function<void(int task)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(task_count()));
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (int t = 0; t < task_count(); ++t) {
    threads.emplace_back([&, t] {
      try {
        body(t);
      } catch (...) {
        std::lock_guard<std::mutex> g(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pamix::runtime
