// ARMCI-style one-sided runtime over PAMI — one of the "other programming
// paradigms" the paper positions PAMI under (§I, §III-A: UPC and ARMCI
// runtimes create their own PAMI client; reference [22]'s mixed MPI+UPC
// programs run exactly this way, with the two clients partitioning the
// MU).
//
// The model: collective allocation of globally-addressable memory, then
// one-sided put/get/accumulate into any task's segment, completion fences,
// and a barrier. Remote accumulate executes *at the target* through a PAMI
// active message — the classic ARMCI atomicity contract (target-side
// application makes concurrent accumulates to one element safe).
//
// Progress: like real ARMCI-over-PAMI, blocking calls advance the caller's
// context; passive-target progress for put/get rides the MU (hardware
// RDMA), while accumulate needs the target to advance (or run
// commthreads), exactly as on BG/Q.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/client.h"
#include "core/collectives.h"
#include "core/context.h"
#include "core/geometry.h"

namespace pamix::models {

/// A collectively-allocated global memory region: one segment per task,
/// addressable from every task.
struct GlobalMemory {
  std::size_t bytes = 0;
  /// Segment base of each task (valid as a remote address for put/get).
  std::vector<void*> base;
  /// This task's own backing storage (freed when every task releases its
  /// GlobalMemory — the collective-free discipline of ARMCI_Free).
  std::shared_ptr<std::vector<std::byte>> local_storage;
  void* local(int task) const { return base[static_cast<std::size_t>(task)]; }
};

/// Per-task ARMCI personality. Collective calls (malloc_shared, barrier)
/// must be made by every task of the world.
class Armci {
 public:
  /// Dispatch id reserved for the accumulate active message.
  static constexpr pami::DispatchId kAccDispatchId = 0xF02;

  Armci(pami::ClientWorld& world, int task);
  ~Armci();

  Armci(const Armci&) = delete;
  Armci& operator=(const Armci&) = delete;

  int task() const { return task_; }
  int world_size() const;

  /// Collective: allocate `bytes` of globally addressable memory on every
  /// task. The returned structure is identical on all tasks.
  std::shared_ptr<GlobalMemory> malloc_shared(std::size_t bytes);

  /// One-sided put/get (blocking; the nonblocking counterparts return a
  /// handle to wait on).
  void put(int dest_task, void* remote, const void* local, std::size_t bytes);
  void get(int src_task, const void* remote, void* local, std::size_t bytes);

  struct NbHandle {
    std::shared_ptr<std::atomic<int>> pending = std::make_shared<std::atomic<int>>(0);
  };
  NbHandle nb_put(int dest_task, void* remote, const void* local, std::size_t bytes);
  void wait(NbHandle& h);

  /// Atomic remote accumulate: remote[i] += local[i], executed at the
  /// target (ARMCI_Acc semantics). Completion is local submission; use
  /// fence_all() to order against subsequent accesses.
  void accumulate(int dest_task, std::int64_t* remote, const std::int64_t* local,
                  std::size_t count);

  /// Fence: wait until every one-sided operation this task issued has
  /// completed at its targets.
  void fence_all();

  /// Collective barrier over the world (implies fence_all on all tasks,
  /// as ARMCI_Barrier does).
  void barrier();

  /// Drive progress (accumulate targets must advance; commthreads do this
  /// automatically when enabled).
  void advance() { ctx_.advance(); }

 private:
  pami::ClientWorld& world_;
  int task_;
  pami::Context& ctx_;
  std::shared_ptr<pami::Geometry> world_geom_;
  std::shared_ptr<std::atomic<int>> outstanding_ = std::make_shared<std::atomic<int>>(0);
};

}  // namespace pamix::models
