#include "runtime/collective_engine.h"

#include <cassert>
#include <type_traits>

namespace pamix::runtime {

namespace {

template <typename T, typename Fn>
void combine_typed(void* acc, const void* in, std::size_t bytes, Fn&& fn) {
  auto* a = static_cast<T*>(acc);
  const auto* b = static_cast<const T*>(in);
  const std::size_t n = bytes / sizeof(T);
  for (std::size_t i = 0; i < n; ++i) a[i] = fn(a[i], b[i]);
}

template <typename T>
void combine_op(hw::CombineOp op, void* acc, const void* in, std::size_t bytes) {
  switch (op) {
    case hw::CombineOp::Add:
      combine_typed<T>(acc, in, bytes, [](T a, T b) { return a + b; });
      return;
    case hw::CombineOp::Min:
      combine_typed<T>(acc, in, bytes, [](T a, T b) { return b < a ? b : a; });
      return;
    case hw::CombineOp::Max:
      combine_typed<T>(acc, in, bytes, [](T a, T b) { return a < b ? b : a; });
      return;
    case hw::CombineOp::BitwiseAnd:
    case hw::CombineOp::BitwiseOr:
    case hw::CombineOp::BitwiseXor:
      if constexpr (std::is_integral_v<T>) {
        if (op == hw::CombineOp::BitwiseAnd) {
          combine_typed<T>(acc, in, bytes, [](T a, T b) { return static_cast<T>(a & b); });
        } else if (op == hw::CombineOp::BitwiseOr) {
          combine_typed<T>(acc, in, bytes, [](T a, T b) { return static_cast<T>(a | b); });
        } else {
          combine_typed<T>(acc, in, bytes, [](T a, T b) { return static_cast<T>(a ^ b); });
        }
      } else {
        assert(false && "bitwise combine on floating point");
      }
      return;
  }
}

}  // namespace

void combine_buffers(hw::CombineOp op, hw::CombineType type, void* acc, const void* in,
                     std::size_t bytes) {
  switch (type) {
    case hw::CombineType::Int32:
      combine_op<std::int32_t>(op, acc, in, bytes);
      return;
    case hw::CombineType::Uint32:
      combine_op<std::uint32_t>(op, acc, in, bytes);
      return;
    case hw::CombineType::Int64:
      combine_op<std::int64_t>(op, acc, in, bytes);
      return;
    case hw::CombineType::Uint64:
      combine_op<std::uint64_t>(op, acc, in, bytes);
      return;
    case hw::CombineType::Double:
      combine_op<double>(op, acc, in, bytes);
      return;
  }
}

CollectiveNetworkEngine::Round& CollectiveNetworkEngine::round_slot(std::uint64_t round) {
  Round* free_slot = nullptr;
  for (Round& r : slots_) {
    if (r.live && r.id == round) return r;
    if (!r.live && free_slot == nullptr) free_slot = &r;
  }
  if (free_slot == nullptr) {
    slots_.emplace_back();  // new in-flight high-water mark
    free_slot = &slots_.back();
  }
  Round& r = *free_slot;
  r.id = round;
  r.live = true;
  r.arrived = 0;
  r.is_broadcast = false;
  r.have_op = false;
  r.bytes = 0;
  r.acc.clear();    // capacity retained: steady state reuses the storage
  r.dests.clear();
  r.hooks.clear();
  r.complete = false;
  return r;
}

void CollectiveNetworkEngine::mark_completed(std::uint64_t round) {
  // Slide the window forward over already-completed rounds until `round`
  // fits. Pipelining keeps the in-flight skew to a handful of rounds, so
  // an incomplete round can never be 64 behind the one completing now.
  while (round >= win_base_ + 64 && (win_bits_ & 1)) {
    win_bits_ >>= 1;
    ++win_base_;
  }
  assert(round >= win_base_ && round < win_base_ + 64 && "collective round window overflow");
  win_bits_ |= 1ull << (round - win_base_);
  while (win_bits_ & 1) {  // advance past the completed prefix
    win_bits_ >>= 1;
    ++win_base_;
  }
}

CollectiveNetworkEngine::Ticket CollectiveNetworkEngine::contribute(
    std::uint64_t round, bool broadcast, bool provides_data, const void* data, std::size_t bytes,
    hw::CombineOp op, hw::CombineType type, void* result_dest, CompletionHook hook,
    void* hook_arg) {
  lock();
  obs_.pvars.add(obs::Pvar::CollRoundsContributed);
  Round& r = round_slot(round);
  assert(!r.complete && "contribution to an already-completed round");
  r.is_broadcast = broadcast;
  if (provides_data) {
    if (broadcast) {
      assert(r.acc.empty() && "two roots in one broadcast round");
      r.acc.assign(static_cast<const std::byte*>(data),
                   static_cast<const std::byte*>(data) + bytes);
      r.bytes = bytes;
    } else {
      if (!r.have_op) {
        r.op = op;
        r.type = type;
        r.bytes = bytes;
        r.have_op = true;
        r.acc.assign(static_cast<const std::byte*>(data),
                     static_cast<const std::byte*>(data) + bytes);
      } else {
        assert(r.bytes == bytes && r.op == op && r.type == type &&
               "mismatched collective contributions");
        combine_buffers(op, type, r.acc.data(), data, bytes);
      }
    }
  }
  if (result_dest != nullptr) r.dests.push_back(result_dest);
  if (hook != nullptr) r.hooks.emplace_back(hook, hook_arg);
  ++r.arrived;
  Round* fire = nullptr;
  if (r.arrived == participants_) {
    // Round fires: RDMA-write the result into every registered buffer.
    assert((!broadcast || !r.acc.empty()) && "broadcast round had no root");
    for (void* d : r.dests) {
      if (d != r.acc.data() && !r.acc.empty()) std::memcpy(d, r.acc.data(), r.bytes);
    }
    r.complete = true;
    mark_completed(round);
    obs_.pvars.add(obs::Pvar::CollRoundsCompleted);
    obs_.trace.record(obs::TraceEv::CollPhase, static_cast<std::uint32_t>(round));
    fire = &r;
  }
  unlock();
  if (fire != nullptr) {
    // Hooks run from the still-live slot, under no engine locks: a hook
    // may immediately re-enter the engine (arm the next pipeline round) —
    // that claims a different slot, and deque references are stable under
    // growth. Nobody contributes to a fully-arrived round again, so the
    // hook list cannot change underneath us; the slot is reclaimed after.
    for (auto& [fn, arg] : fire->hooks) fn(arg);
    lock();
    fire->live = false;
    unlock();
  }
  return Ticket{round};
}

CollectiveNetworkEngine::Ticket CollectiveNetworkEngine::contribute_reduce(
    std::uint64_t round, const void* data, std::size_t bytes, hw::CombineOp op,
    hw::CombineType type, void* result_dest, CompletionHook hook, void* hook_arg) {
  return contribute(round, /*broadcast=*/false, /*provides_data=*/true, data, bytes, op, type,
                    result_dest, hook, hook_arg);
}

CollectiveNetworkEngine::Ticket CollectiveNetworkEngine::contribute_broadcast(
    std::uint64_t round, bool is_root, const void* data, std::size_t bytes, void* result_dest,
    CompletionHook hook, void* hook_arg) {
  return contribute(round, /*broadcast=*/true, is_root, data, bytes, hw::CombineOp::Add,
                    hw::CombineType::Double, result_dest, hook, hook_arg);
}

bool CollectiveNetworkEngine::done(const Ticket& t) const {
  lock();
  bool complete;
  if (t.round < win_base_) {
    complete = true;
  } else if (t.round < win_base_ + 64) {
    complete = (win_bits_ >> (t.round - win_base_)) & 1;
  } else {
    complete = false;  // not even in the completion window yet
  }
  unlock();
  return complete;
}

}  // namespace pamix::runtime
