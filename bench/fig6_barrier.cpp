// Figure 6 — MPI_Barrier latency via the global-interrupt network, node
// sweep to 2048, ppn in {1, 4, 16}.
//
//   Paper anchors at 2048 nodes: 2.7 us (ppn1), 4.0 us (ppn4), 4.2 us
//   (ppn16). The GI round is 2 x classroute-tree depth; the ppn surcharge
//   is the node-local L2-atomic barrier.
//
// The model rows use real classroute trees built over each geometry; a
// functional host run then drives the actual GI + local-barrier code path
// on a small machine.
#include <cstdio>

#include "bench_util.h"
#include "mpi/mpi.h"
#include "sim/collective_model.h"

namespace {

using namespace pamix;

double host_barrier_us(int ppn, int iters) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), ppn);
  mpi::MpiWorld world(machine, mpi::MpiConfig{});
  double us = 0;
  machine.run_spmd([&](int task) {
    mpi::Mpi& mp = world.at(task);
    mp.init(mpi::ThreadLevel::Single);
    const mpi::Comm w = mp.world();
    for (int i = 0; i < 50; ++i) mp.barrier(w);
    bench::Stopwatch sw;
    for (int i = 0; i < iters; ++i) mp.barrier(w);
    if (mp.rank(w) == 0) us = sw.elapsed_us() / iters;
    mp.finalize();
  });
  return us;
}

}  // namespace

int main() {
  bench::header("FIGURE 6 — MPI_Barrier latency via GI network (us)");

  std::printf("%-8s %10s %10s %10s %12s\n", "nodes", "ppn=1", "ppn=4", "ppn=16", "tree depth");
  std::printf("------------------------------------------------------\n");
  for (int nodes : {32, 64, 128, 256, 512, 1024, 2048}) {
    const sim::CollectiveModel m(bench::geometry_for_nodes(nodes), sim::BgqCostModel{});
    std::printf("%-8d %10.2f %10.2f %10.2f %12d\n", nodes, m.barrier_latency_us(1),
                m.barrier_latency_us(4), m.barrier_latency_us(16), m.world_route().depth());
  }
  std::printf("\nPaper anchors @2048 nodes: 2.7 / 4.0 / 4.2 us for ppn 1 / 4 / 16.\n");

  bench::JsonResult json;
  const int kIters = bench::env_iters("PAMIX_FIG6_ITERS", 2000);
  json.add("iters", static_cast<std::uint64_t>(kIters));
  std::printf("\nFunctional host run (real GI + L2 local barrier, 4 nodes, host clock):\n");
  for (int ppn : {1, 2, 4}) {
    const double us = host_barrier_us(ppn, kIters);
    std::printf("  ppn=%d : %8.2f us/barrier\n", ppn, us);
    char key[32];
    std::snprintf(key, sizeof(key), "barrier_us_ppn%d", ppn);
    json.add(key, us);
  }
  json.write("BENCH_fig6.json");
  bench::obs_finish();
  return 0;
}
