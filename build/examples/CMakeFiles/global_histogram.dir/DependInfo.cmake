
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/global_histogram.cpp" "examples/CMakeFiles/global_histogram.dir/global_histogram.cpp.o" "gcc" "examples/CMakeFiles/global_histogram.dir/global_histogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pamix_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pamix_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
