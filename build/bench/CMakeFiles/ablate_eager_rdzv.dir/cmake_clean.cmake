file(REMOVE_RECURSE
  "CMakeFiles/ablate_eager_rdzv.dir/ablate_eager_rdzv.cpp.o"
  "CMakeFiles/ablate_eager_rdzv.dir/ablate_eager_rdzv.cpp.o.d"
  "ablate_eager_rdzv"
  "ablate_eager_rdzv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_eager_rdzv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
