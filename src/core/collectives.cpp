#include "core/collectives.h"

#include <cassert>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "core/buffer_pool.h"
#include "core/env.h"
#include "runtime/collective_engine.h"
#include "sim/rect_bcast.h"

namespace pamix::pami::coll {

CollTuning& tuning() {
  static CollTuning t = [] {
    CollTuning v;
    v.slice_bytes = core::env_size_or("PAMIX_COLL_SLICE", kPipelineSliceBytes);
    if (v.slice_bytes == 0 || v.slice_bytes % 64 != 0) {
      std::fprintf(stderr,
                   "pamix: ignoring invalid PAMIX_COLL_SLICE=%zu (not a positive multiple "
                   "of 64; keeping %zu)\n",
                   v.slice_bytes, kPipelineSliceBytes);
      v.slice_bytes = kPipelineSliceBytes;
    }
    v.radix = core::env_int_or("PAMIX_COLL_RADIX", v.radix, 2, 64);
    v.overlap = core::env_flag_or("PAMIX_COLL_OVERLAP", true);
    // 0 is a deliberate setting (store-and-forward A/B arm), so only the
    // env parser's own validation applies; env_size_or keeps the K/M
    // suffix discipline and the 256MiB typo cap.
    v.rect_chunk = core::env_size_or("PAMIX_RECT_CHUNK", kRectChunkBytes);
    return v;
  }();
  return t;
}

namespace {

// ------------------------------------------------------- software engine --

struct CollHeader {
  std::int32_t geom = 0;
  std::uint64_t seq = 0;
  std::int32_t phase = 0;
  // Chunk index within a streamed rectangle-broadcast relay (data and ack
  // phases); 0 for every other collective, where (geom, seq, phase, src)
  // alone is unique.
  std::uint32_t chunk = 0;
};

/// Per-client matching state for the software collectives, plus the
/// client's "coll" telemetry domain and its pooled payload storage.
///
/// Matching is a flat slot table scanned linearly: a software collective
/// has at most a handful of messages outstanding per rank (tree fan-in
/// plus a dissemination round), so a scan over a few cache lines beats the
/// std::map node churn this replaced — and slot reuse means zero
/// steady-state allocation. Deposits may run on any thread advancing a
/// context, so the pool's owner-thread acquire is serialized under `mu`
/// along with the table itself.
struct CollState {
  hw::L2AtomicMutex mu;
  obs::Domain& obs;
  core::BufferPool pool;  // guarded by mu (acquire side)

  struct Slot {
    std::int32_t src = -1;  // -1 = empty
    std::int32_t geom = 0;
    std::int32_t phase = 0;
    std::uint32_t chunk = 0;
    std::uint64_t seq = 0;
    core::Buf data;
  };
  std::vector<Slot> slots;               // grows to peak concurrency, then stable
  std::map<int, std::uint64_t> seq;      // per-geometry operation counter

  /// Reusable per-color scratch of the chunked rectangle relay (one
  /// rectangle broadcast in flight per task at a time — the call is
  /// blocking). Vectors grow to the geometry's color/children counts on
  /// first use and are reused afterwards: zero steady-state allocation.
  struct RectColor {
    std::size_t off = 0;        // slice offset in the user buffer
    std::size_t len = 0;        // slice length
    std::uint32_t nchunks = 0;
    std::uint32_t recv_next = 0;  // chunks landed from the parent
    std::uint32_t fwd_next = 0;   // chunks forwarded to every child
    bool done = false;
    int parent_rank = -1;  // rank of the parent node's master (-1 at the root node)
    std::vector<std::uint32_t> acked;  // per child: chunks confirmed received
  };
  std::vector<RectColor> rect;
  std::uint64_t rect_inflight_peak = 0;  // mirror of the peak-tracking pvar

  explicit CollState(int task)
      : obs(obs::Registry::instance().create("coll", task, 0, /*want_ring=*/false)),
        pool(&obs.pvars) {
    obs.pvars.add(obs::Pvar::ConfigCollSlice, tuning().slice_bytes);
    obs.pvars.add(obs::Pvar::ConfigCollRadix, static_cast<std::uint64_t>(tuning().radix));
    obs.pvars.add(obs::Pvar::ConfigRectChunk, tuning().rect_chunk);
  }

  core::Buf acquire(std::size_t n) {
    std::lock_guard<hw::L2AtomicMutex> g(mu);
    return pool.acquire(n);
  }
  /// Pre-size the deposit pool and the match table for `count` concurrent
  /// `n`-byte deposits, so a demand burst up to that bound cannot grow
  /// either (empty slots match insert_locked's reuse scan).
  void reserve(std::size_t n, std::size_t count) {
    std::lock_guard<hw::L2AtomicMutex> g(mu);
    pool.reserve(n, count);
    if (slots.size() < count) slots.resize(count);
  }
  core::Buf acquire_copy(const void* src, std::size_t n) {
    std::lock_guard<hw::L2AtomicMutex> g(mu);
    return pool.acquire_copy(src, n);
  }

  void deposit(const CollHeader& h, int src, core::Buf data) {
    std::lock_guard<hw::L2AtomicMutex> g(mu);
    insert_locked(h, src, std::move(data));
  }

  /// Inline-delivery deposit: one lock acquisition covers both the pooled
  /// copy and the table insert.
  void deposit_copy(const CollHeader& h, int src, const void* bytes, std::size_t n) {
    std::lock_guard<hw::L2AtomicMutex> g(mu);
    insert_locked(h, src, pool.acquire_copy(bytes, n));
  }

  bool take(std::int32_t geom, std::uint64_t sq, std::int32_t phase, std::int32_t src,
            core::Buf& out, std::uint32_t chunk = 0) {
    std::lock_guard<hw::L2AtomicMutex> g(mu);
    for (Slot& s : slots) {
      if (s.src == src && s.seq == sq && s.geom == geom && s.phase == phase &&
          s.chunk == chunk) {
        out = std::move(s.data);
        s.src = -1;
        return true;
      }
    }
    return false;
  }

 private:
  void insert_locked(const CollHeader& h, int src, core::Buf data) {
    obs.pvars.add(obs::Pvar::CollSwDeposits);
    for (Slot& s : slots) {
      if (s.src < 0) {
        s.src = src;
        s.geom = h.geom;
        s.phase = h.phase;
        s.chunk = h.chunk;
        s.seq = h.seq;
        s.data = std::move(data);
        return;
      }
    }
    Slot s;
    s.src = src;
    s.geom = h.geom;
    s.phase = h.phase;
    s.chunk = h.chunk;
    s.seq = h.seq;
    s.data = std::move(data);
    slots.push_back(std::move(s));
  }
};

CollState& state_of(Client& client) {
  auto& cookie = client.collective_cookie();
  if (!cookie) cookie = std::make_shared<CollState>(client.task());
  return *std::static_pointer_cast<CollState>(cookie);
}

/// Next operation sequence number for geometry `g` on this task.
std::uint64_t next_seq(Client& client, Geometry& g) {
  CollState& st = state_of(client);
  std::lock_guard<hw::L2AtomicMutex> lk(st.mu);
  return st.seq[g.id()]++;
}

void progress(Context& ctx);

/// The wait discipline for every blocking loop in this file: advance the
/// owning client's contexts (real work), then cpu_relax — a BG/Q waiter
/// owns its hardware thread and never enters the scheduler. The yield is
/// an escape hatch for oversubscribed build/test hosts, same as
/// L2AtomicMutex's slow path: when the machine runs more task threads
/// than the host has hardware threads, the waited-for task is frequently
/// not running, so burning the rest of a scheduler quantum on cpu_relax
/// only delays it — hw::spin_yield_interval() drops to 1 there.
class ProgressSpin {
 public:
  explicit ProgressSpin(Context& ctx)
      : ctx_(ctx), yield_interval_(hw::spin_yield_interval()) {}
  void spin() {
    progress(ctx_);
    hw::cpu_relax();
    if (++spins_ >= yield_interval_) {
      spins_ = 0;
      std::this_thread::yield();
    }
  }

 private:
  Context& ctx_;
  const int yield_interval_;
  int spins_ = 0;
};

/// Send one software-collective message. Small messages are copied by the
/// eager/inline protocols, so the caller's buffer is immediately free;
/// rendezvous-sized ones are pulled from the caller's buffer later, so the
/// caller passes `pending` (on its stack) and must drain it (drain_sends)
/// before its buffers go out of scope. `chunk` disambiguates the streamed
/// rectangle-relay messages sharing one (seq, phase); `hints` carries
/// torus hint bits for sends that must stay on an algorithm-claimed link.
void send_coll(Context& ctx, Geometry& g, std::uint64_t seq, int phase, std::size_t dest_rank,
               const void* data, std::size_t bytes, std::atomic<int>& pending,
               std::uint32_t chunk = 0, std::uint16_t hints = 0) {
  CollHeader h;
  h.geom = g.id();
  h.seq = seq;
  h.phase = phase;
  h.chunk = chunk;
  SendParams p;
  p.dispatch = kCollDispatchId;
  p.dest = Endpoint{g.task_of(dest_rank), 0};
  p.header = &h;
  p.header_bytes = sizeof(h);
  p.data = data;
  p.data_bytes = bytes;
  p.hints = hints;
  const ClientConfig& cfg = ctx.client().world().config();
  if (bytes > std::min(cfg.eager_limit, cfg.shm_eager_limit)) {
    pending.fetch_add(1, std::memory_order_acq_rel);
    std::atomic<int>* counter = &pending;
    p.on_remote_done = [counter] { counter->fetch_sub(1, std::memory_order_acq_rel); };
  }
  while (ctx.send(p) == Result::Eagain) {
    progress(ctx);
    hw::cpu_relax();
  }
}

/// Wait until every rendezvous-sized send of this collective has been
/// pulled by its receiver (sender buffers may then be reused/freed).
void drain_sends(Context& ctx, std::atomic<int>& pending) {
  ProgressSpin spin(ctx);
  while (pending.load(std::memory_order_acquire) > 0) spin.spin();
}

core::Buf wait_coll(Context& ctx, Geometry& g, std::uint64_t seq, int phase,
                    std::size_t src_rank, std::uint32_t chunk = 0) {
  CollState& st = state_of(ctx.client());
  const std::int32_t src = g.task_of(src_rank);
  core::Buf out;
  ProgressSpin spin(ctx);
  while (!st.take(g.id(), seq, phase, src, out, chunk)) spin.spin();
  return out;
}

/// Progress while blocked inside a collective. The caller owns `ctx`
/// (possibly holding its lock), but messages and pending injections may
/// live on the client's other contexts — e.g. point-to-point traffic that
/// was in flight when the collective started — so those are advanced too,
/// under trylock so active commthreads are never raced.
void progress(Context& ctx) {
  ctx.advance();
  Client& client = ctx.client();
  for (int i = 0; i < client.context_count(); ++i) {
    Context& other = client.context(i);
    if (&other == &ctx) continue;
    if (other.trylock()) {
      other.advance();
      other.unlock();
    }
  }
}

// ----------------------------------------------------------- local helpers --

struct LocalInfo {
  Geometry::NodeGroup* group = nullptr;
  bool is_master = false;
  int local_index = 0;
  int local_count = 1;
};

LocalInfo local_info(Context& ctx, Geometry& g) {
  LocalInfo li;
  const int task = ctx.client().task();
  const int node = ctx.client().machine().node_of_task(task);
  li.group = &g.node_group(node);
  li.is_master = li.group->master_task == task;
  li.local_index = g.local_index(task);
  li.local_count = static_cast<int>(li.group->local_tasks.size());
  return li;
}

void local_barrier(Context& ctx, LocalInfo& li) {
  li.group->barrier->arrive_and_wait([&ctx] { progress(ctx); });
}

/// Copy out of a peer's buffer through the CNK global VA.
const std::byte* peer_read(Context& ctx, int peer_task, const void* addr, std::size_t bytes) {
  runtime::Machine& m = ctx.client().machine();
  const std::byte* p = ctx.client().node().global_va().translate(
      m.local_index_of_task(peer_task), addr, bytes);
  assert(p != nullptr && "peer buffer not visible through global VA");
  return p;
}

// --------------------------------------------------- optimized algorithms --

/// Engine completion hook: a network round of this node group landed.
/// Runs on whichever master's contribution fired the round (possibly a
/// different node's thread), under no engine locks. Rounds of one group
/// complete in order — round k needs every master's arm of k, and each
/// master arms k only after arming k-1 — so a bare increment is a correct
/// completion count.
void round_complete_hook(void* arg) {
  static_cast<Geometry::NodeGroup*>(arg)->net_done.fetch_add(1, std::memory_order_acq_rel);
}

void barrier_optimized(Context& ctx, Geometry& g) {
  LocalInfo li = local_info(ctx, g);
  local_barrier(ctx, li);  // phase 1: everyone local arrived
  if (li.is_master) {
    hw::GiBarrier* gi = ctx.client().machine().gi_network().barrier(g.classroute());
    const std::uint64_t token = gi->arrive();
    ProgressSpin spin(ctx);
    while (!gi->done(token)) spin.spin();
  }
  local_barrier(ctx, li);  // phase 2: release after the GI round
}

// The slice pipeline (Figure 4), shared by broadcast and allreduce.
//
// Per-slice barriers are gone: the schedule runs on three monotone
// counters in the NodeGroup (armed / net_done / math_done — the
// sense-reversing phase counter generalized to a pipeline). Each op
// captures their values at entry (`*0` bases); one entry barrier
// publishes buffers and one exit barrier retires the op. In between:
//
//   rank p, slice k:  wait armed >= k-1      (staging half k%2 consumed)
//                     reduce sub-range  -> staging[k%2]   (math_done += 1)
//   master, slice k:  wait math_done >= (k+1)*local_count
//                     arm round k            (armed += 1)  — NO done() poll:
//                     completion arrives via round_complete_hook (net_done)
//                     while the master is already doing slice k+1's math
//   peers:            copy slice j out of the master's recvbuf as soon as
//                     net_done > j, overlapping rounds still in flight
/// Cap on network rounds a master may have in flight beyond the last
/// completed one — the model's stand-in for the finite injection FIFO:
/// each live round holds a slice-sized accumulator in the engine, so an
/// unthrottled master pipelining a 32MB message would pin hundreds of
/// slices of engine state.
constexpr std::uint64_t kMaxInflightRounds = 8;

void allreduce_optimized(Context& ctx, Geometry& g, const void* sendbuf, void* recvbuf,
                         std::size_t bytes, hw::CombineOp op, hw::CombineType type) {
  LocalInfo li = local_info(ctx, g);
  Geometry::NodeGroup& grp = *li.group;
  runtime::Machine& m = ctx.client().machine();
  runtime::CollectiveNetworkEngine& eng = m.collective_engine(g.classroute());
  CollState& st = state_of(ctx.client());
  const std::size_t elem = hw::combine_type_size(type);

  // Slice size: runtime-tunable; align down to the element width so no
  // element straddles a slice boundary (tuning() guarantees a multiple of
  // 64, which covers every CombineType, but stay defensive).
  std::size_t S = tuning().slice_bytes;
  S -= S % elem;
  if (S == 0) S = elem;
  const std::size_t nslices = (bytes + S - 1) / S;
  const bool overlap = tuning().overlap;

  // Counter bases, captured before the entry barrier: the previous op's
  // exit barrier quiesced the counters, and every increment of this op
  // happens after all local ranks pass the entry barrier.
  const std::uint64_t armed0 = grp.armed.load(std::memory_order_acquire);
  const std::uint64_t done0 = grp.net_done.load(std::memory_order_acquire);
  const std::uint64_t math0 = grp.math_done.load(std::memory_order_acquire);

  grp.contrib[static_cast<std::size_t>(li.local_index)].publish(sendbuf);
  if (li.is_master) {
    if (grp.staging.size() < 2 * S) grp.staging.resize(2 * S);  // double buffer
    grp.master_slot.publish(recvbuf);
  }
  local_barrier(ctx, li);  // entry: buffers published, staging sized

  const auto lc = static_cast<std::uint64_t>(li.local_count);
  ProgressSpin spin(ctx);
  auto wait_for = [&](std::atomic<std::uint64_t>& c, std::uint64_t target) {
    while (c.load(std::memory_order_acquire) < target) spin.spin();
  };
  auto in_flight = [&] {
    return grp.armed.load(std::memory_order_acquire) >
           grp.net_done.load(std::memory_order_acquire);
  };

  // Peers retire completed slices out of the master's recvbuf; lazily
  // (after each slice's math) and finally blocking for the tail.
  std::size_t next_copy = 0;
  auto copy_ready = [&](bool block) {
    const void* mbuf = grp.master_slot.ptr.load(std::memory_order_acquire);
    for (;;) {
      std::uint64_t ready = grp.net_done.load(std::memory_order_acquire) - done0;
      if (ready > nslices) ready = nslices;
      while (next_copy < ready) {
        const std::size_t off = next_copy * S;
        const std::size_t slice = std::min(S, bytes - off);
        const bool overlapped = in_flight();
        const std::uint64_t t0 = obs::now_ns();
        const std::byte* src = peer_read(ctx, grp.master_task,
                                         static_cast<const std::byte*>(mbuf) + off, slice);
        std::memcpy(static_cast<std::byte*>(recvbuf) + off, src, slice);
        ctx.obs().trace.record_span(obs::TraceEv::CollCopyOut, t0,
                                    static_cast<std::uint32_t>(slice));
        if (overlapped) st.obs.pvars.add(obs::Pvar::CollOverlapBytes, slice);
        ++next_copy;
      }
      if (!block || next_copy >= nslices) return;
      spin.spin();
    }
  };

  for (std::size_t k = 0; k < nslices; ++k) {
    const std::size_t off = k * S;
    const std::size_t slice = std::min(S, bytes - off);
    std::byte* stage = grp.staging.data() + (k % 2) * S;

    // Staging half (k % 2) was last consumed when round k-2 was armed
    // (the engine copies/combines at arm time); wait for that arm before
    // overwriting it. The first two slices start on fresh halves.
    if (k >= 2) wait_for(grp.armed, armed0 + (k - 1));

    // Parallel local math (Figure 3): each local process reduces its
    // sub-range of the slice across all local contribution buffers —
    // concurrently with the previous slice's network round (Figure 4).
    const bool overlapped = in_flight();
    const std::uint64_t t0 = obs::now_ns();
    std::size_t sub_bytes = 0;
    {
      const std::size_t elems = slice / elem;
      const std::size_t per = (elems + static_cast<std::size_t>(li.local_count) - 1) /
                              static_cast<std::size_t>(li.local_count);
      const std::size_t lo = std::min(per * static_cast<std::size_t>(li.local_index), elems);
      const std::size_t hi = std::min(lo + per, elems);
      if (hi > lo) {
        const std::size_t sub_off = lo * elem;
        sub_bytes = (hi - lo) * elem;
        bool first = true;
        for (int i = 0; i < li.local_count; ++i) {
          const void* contrib_base =
              grp.contrib[static_cast<std::size_t>(i)].ptr.load(std::memory_order_acquire);
          const std::byte* src =
              peer_read(ctx, grp.local_tasks[static_cast<std::size_t>(i)],
                        static_cast<const std::byte*>(contrib_base) + off + sub_off, sub_bytes);
          if (first) {
            std::memcpy(stage + sub_off, src, sub_bytes);
            first = false;
          } else {
            runtime::combine_buffers(op, type, stage + sub_off, src, sub_bytes);
          }
        }
      }
    }
    if (sub_bytes > 0) {
      ctx.obs().trace.record_span(obs::TraceEv::CollSliceMath, t0,
                                  static_cast<std::uint32_t>(sub_bytes));
      st.obs.pvars.add(obs::Pvar::CollLocalReduceBytes, sub_bytes);
      if (overlapped) st.obs.pvars.add(obs::Pvar::CollOverlapBytes, sub_bytes);
    }
    grp.math_done.fetch_add(1, std::memory_order_acq_rel);

    if (li.is_master) {
      st.obs.pvars.add(obs::Pvar::CollSlices);
      // Arm round k once every local rank finished this slice's math,
      // then move straight on to slice k+1 — no done() polling. The
      // in-flight cap bounds the engine's live-round state (each pending
      // round holds a slice-sized accumulator), like a finite injection
      // FIFO would on the real network.
      if (k > kMaxInflightRounds) wait_for(grp.net_done, done0 + k - kMaxInflightRounds);
      wait_for(grp.math_done, math0 + (k + 1) * lc);
      const std::uint64_t round = grp.round.fetch_add(1, std::memory_order_acq_rel);
      eng.contribute_reduce(round, stage, slice, op, type,
                            static_cast<std::byte*>(recvbuf) + off, round_complete_hook,
                            &grp);
      grp.armed.fetch_add(1, std::memory_order_acq_rel);
      st.obs.pvars.add(obs::Pvar::CollNetRounds);
      ctx.obs().trace.record(obs::TraceEv::CollArm, static_cast<std::uint32_t>(round));
      if (!overlap) wait_for(grp.net_done, done0 + k + 1);
    } else {
      copy_ready(/*block=*/false);
    }
  }

  // Drain: the master waits for the final round's hook; peers block for
  // the remaining copy-outs.
  if (li.is_master) {
    wait_for(grp.net_done, done0 + nslices);
  } else {
    copy_ready(/*block=*/true);
  }
  local_barrier(ctx, li);  // exit: results copied, counters quiescent
}

void broadcast_optimized(Context& ctx, Geometry& g, std::size_t root_rank, void* buffer,
                         std::size_t bytes) {
  LocalInfo li = local_info(ctx, g);
  Geometry::NodeGroup& grp = *li.group;
  runtime::Machine& m = ctx.client().machine();
  runtime::CollectiveNetworkEngine& eng = m.collective_engine(g.classroute());
  CollState& st = state_of(ctx.client());
  const int root_task = g.task_of(root_rank);
  const int root_node = m.node_of_task(root_task);
  const int my_task = ctx.client().task();
  const bool on_root_node = m.node_of_task(my_task) == root_node;

  // Long broadcasts slice exactly like reductions: the network pushes
  // slice k down the classroute while peers copy slice k-1 out of their
  // master's buffer.
  const std::size_t S = tuning().slice_bytes;
  const std::size_t nslices = (bytes + S - 1) / S;  // 0 when bytes == 0
  const bool overlap = tuning().overlap;
  const std::uint64_t done0 = grp.net_done.load(std::memory_order_acquire);

  if (my_task == root_task) grp.root_slot.publish(buffer);
  if (li.is_master) grp.master_slot.publish(buffer);
  local_barrier(ctx, li);  // entry

  ProgressSpin spin(ctx);
  auto wait_net = [&](std::uint64_t target) {
    while (grp.net_done.load(std::memory_order_acquire) < target) spin.spin();
  };

  if (li.is_master) {
    const std::byte* src = nullptr;
    if (on_root_node && nslices > 0) {
      const void* r = grp.root_slot.ptr.load(std::memory_order_acquire);
      src = my_task == root_task ? static_cast<const std::byte*>(r)
                                 : peer_read(ctx, root_task, r, bytes);
    }
    for (std::size_t k = 0; k < nslices; ++k) {
      const std::size_t off = k * S;
      const std::size_t slice = std::min(S, bytes - off);
      // Finite-FIFO throttle: bound the engine's live rounds (each holds
      // a slice-sized accumulator) instead of arming the whole message.
      if (k > kMaxInflightRounds) wait_net(done0 + k - kMaxInflightRounds);
      const std::uint64_t round = grp.round.fetch_add(1, std::memory_order_acq_rel);
      eng.contribute_broadcast(round, on_root_node, on_root_node ? src + off : nullptr, slice,
                               static_cast<std::byte*>(buffer) + off, round_complete_hook,
                               &grp);
      grp.armed.fetch_add(1, std::memory_order_acq_rel);
      st.obs.pvars.add(obs::Pvar::CollNetRounds);
      st.obs.pvars.add(obs::Pvar::CollSlices);
      ctx.obs().trace.record(obs::TraceEv::CollArm, static_cast<std::uint32_t>(round));
      if (!overlap) wait_net(done0 + k + 1);
    }
    wait_net(done0 + nslices);  // every slice landed in our buffer
  } else if (my_task != root_task) {
    // Peers pipeline the copy-out against rounds still in flight.
    const void* mbuf = grp.master_slot.ptr.load(std::memory_order_acquire);
    for (std::size_t k = 0; k < nslices; ++k) {
      wait_net(done0 + k + 1);
      const std::size_t off = k * S;
      const std::size_t slice = std::min(S, bytes - off);
      const bool overlapped = grp.armed.load(std::memory_order_acquire) >
                              grp.net_done.load(std::memory_order_acquire);
      const std::uint64_t t0 = obs::now_ns();
      const std::byte* psrc =
          peer_read(ctx, grp.master_task, static_cast<const std::byte*>(mbuf) + off, slice);
      std::memcpy(static_cast<std::byte*>(buffer) + off, psrc, slice);
      ctx.obs().trace.record_span(obs::TraceEv::CollCopyOut, t0,
                                  static_cast<std::uint32_t>(slice));
      if (overlapped) st.obs.pvars.add(obs::Pvar::CollOverlapBytes, slice);
    }
  }
  local_barrier(ctx, li);  // exit: master buffer stable until every peer copied
}

// ---------------------------------------------------- software algorithms --

/// k-nomial tree support: the "scale" of a relative rank is r^d where d is
/// the position of its lowest nonzero base-r digit — the round in which it
/// receives from its parent. The root's scale is the first power of r
/// >= n. With r == 2 this is exactly the classic binomial tree.
std::size_t knomial_scale(std::size_t rel, std::size_t n, std::size_t r) {
  std::size_t scale = 1;
  while (scale < n && rel % (scale * r) == 0) scale *= r;
  return scale;
}

void barrier_software(Context& ctx, Geometry& g) {
  const std::size_t n = g.size();
  const std::size_t me = *g.rank_of(ctx.client().task());
  const std::uint64_t seq = next_seq(ctx.client(), g);
  std::atomic<int> pending{0};
  // Dissemination barrier: log2(n) rounds of token exchange.
  for (std::size_t dist = 1, phase = 0; dist < n; dist *= 2, ++phase) {
    const std::size_t to = (me + dist) % n;
    const std::size_t from = (me + n - dist) % n;
    send_coll(ctx, g, seq, static_cast<int>(phase), to, nullptr, 0, pending);
    wait_coll(ctx, g, seq, static_cast<int>(phase), from);
  }
}

void broadcast_software(Context& ctx, Geometry& g, std::size_t root_rank, void* buffer,
                        std::size_t bytes) {
  const std::size_t n = g.size();
  const std::size_t me = *g.rank_of(ctx.client().task());
  const std::size_t rel = (me + n - root_rank) % n;
  const std::uint64_t seq = next_seq(ctx.client(), g);
  const auto radix = static_cast<std::size_t>(tuning().radix);
  std::atomic<int> pending{0};

  const std::size_t scale = knomial_scale(rel, n, radix);
  if (rel != 0) {
    // Receive from the parent: zero our lowest nonzero base-r digit.
    const std::size_t parent_rel = rel - ((rel / scale) % radix) * scale;
    core::Buf data = wait_coll(ctx, g, seq, 0, (parent_rel + root_rank) % n);
    assert(data.size() == bytes);
    if (bytes > 0) std::memcpy(buffer, data.data(), bytes);
  }
  // Forward to children — rel + j*s for every scale below ours, largest
  // subtrees first so the deepest subtree starts earliest.
  for (std::size_t s = scale / radix; s > 0; s /= radix) {
    for (std::size_t j = 1; j < radix; ++j) {
      const std::size_t child_rel = rel + j * s;
      if (child_rel >= n) break;
      send_coll(ctx, g, seq, 0, (child_rel + root_rank) % n, buffer, bytes, pending);
    }
  }
  drain_sends(ctx, pending);
}

void reduce_software(Context& ctx, Geometry& g, std::size_t root_rank, const void* sendbuf,
                     void* recvbuf, std::size_t bytes, hw::CombineOp op, hw::CombineType type) {
  const std::size_t n = g.size();
  const std::size_t me = *g.rank_of(ctx.client().task());
  const std::size_t rel = (me + n - root_rank) % n;
  const std::uint64_t seq = next_seq(ctx.client(), g);
  const auto radix = static_cast<std::size_t>(tuning().radix);
  CollState& st = state_of(ctx.client());
  std::atomic<int> pending{0};

  core::Buf acc = st.acquire_copy(sendbuf, bytes);
  // Mirror of the broadcast tree: combine children (smallest scale first —
  // they finish their subtrees first), then send the partial up.
  const std::size_t scale = knomial_scale(rel, n, radix);
  for (std::size_t s = 1; s < scale; s *= radix) {
    for (std::size_t j = 1; j < radix; ++j) {
      const std::size_t child_rel = rel + j * s;
      if (child_rel >= n) break;
      core::Buf data = wait_coll(ctx, g, seq, 1, (child_rel + root_rank) % n);
      assert(data.size() == bytes);
      if (bytes > 0) runtime::combine_buffers(op, type, acc.data(), data.data(), bytes);
    }
  }
  if (rel != 0) {
    const std::size_t parent_rel = rel - ((rel / scale) % radix) * scale;
    send_coll(ctx, g, seq, 1, (parent_rel + root_rank) % n, acc.data(), bytes, pending);
    drain_sends(ctx, pending);  // the parent pulls from `acc`
  } else if (recvbuf != nullptr && bytes > 0) {
    std::memcpy(recvbuf, acc.data(), bytes);
  }
}

}  // namespace

// ------------------------------------------------------------- public API --

void register_collective_dispatch(Client& client) {
  state_of(client);  // create the matching state while construction is single-threaded
  for (int c = 0; c < client.context_count(); ++c) {
    client.context(c).set_dispatch(
        kCollDispatchId,
        [&client](Context&, const void* header, std::size_t header_bytes, const void* pipe,
                  std::size_t pipe_bytes, std::size_t total, Endpoint origin,
                  RecvDescriptor* recv) {
          CollHeader h;
          assert(header_bytes == sizeof(h));
          (void)header_bytes;
          std::memcpy(&h, header, sizeof(h));
          CollState& st = state_of(client);
          if (recv == nullptr) {
            // Whole message arrived inline: pooled copy + insert in one
            // lock acquisition.
            st.deposit_copy(h, origin.task, pipe, pipe_bytes);
            return;
          }
          // Rendezvous: pull straight into a pooled block, then move it
          // into the match table on completion.
          core::Buf buf = st.acquire(total);
          recv->buffer = buf.data();
          recv->bytes = total;
          recv->on_complete = [&st, h, src = origin.task, b = std::move(buf)]() mutable {
            st.deposit(h, src, std::move(b));
          };
        });
  }
}

void software_barrier(Context& ctx, Geometry& g) { barrier_software(ctx, g); }

void barrier(Context& ctx, Geometry& g) {
  if (g.optimized()) {
    barrier_optimized(ctx, g);
  } else {
    barrier_software(ctx, g);
  }
}

void broadcast(Context& ctx, Geometry& g, std::size_t root_rank, void* buffer,
               std::size_t bytes) {
  if (g.optimized()) {
    broadcast_optimized(ctx, g, root_rank, buffer, bytes);
  } else {
    broadcast_software(ctx, g, root_rank, buffer, bytes);
  }
}

void allreduce(Context& ctx, Geometry& g, const void* sendbuf, void* recvbuf, std::size_t bytes,
               hw::CombineOp op, hw::CombineType type) {
  if (g.optimized()) {
    allreduce_optimized(ctx, g, sendbuf, recvbuf, bytes, op, type);
  } else {
    reduce_software(ctx, g, 0, sendbuf, recvbuf, bytes, op, type);
    broadcast_software(ctx, g, 0, recvbuf, bytes);
  }
}

void reduce(Context& ctx, Geometry& g, std::size_t root_rank, const void* sendbuf, void* recvbuf,
            std::size_t bytes, hw::CombineOp op, hw::CombineType type) {
  if (g.optimized()) {
    // Collective-network reduce delivers everywhere; non-roots discard
    // into pooled scratch (the hardware writes every node's master
    // regardless).
    if (*g.rank_of(ctx.client().task()) == root_rank) {
      allreduce_optimized(ctx, g, sendbuf, recvbuf, bytes, op, type);
    } else {
      core::Buf scratch = state_of(ctx.client()).acquire(bytes);
      allreduce_optimized(ctx, g, sendbuf, scratch.data(), bytes, op, type);
    }
  } else {
    reduce_software(ctx, g, root_rank, sendbuf, recvbuf, bytes, op, type);
  }
}

void alltoall(Context& ctx, Geometry& g, const void* sendbuf, void* recvbuf,
              std::size_t bytes_per_rank) {
  const std::size_t n = g.size();
  const std::size_t me = *g.rank_of(ctx.client().task());
  const std::uint64_t seq = next_seq(ctx.client(), g);
  const auto* send = static_cast<const std::byte*>(sendbuf);
  auto* recv = static_cast<std::byte*>(recvbuf);
  std::atomic<int> pending{0};

  // Own block.
  std::memcpy(recv + me * bytes_per_rank, send + me * bytes_per_rank, bytes_per_rank);
  // Pairwise exchange: at step i, send to me+i, receive from me-i.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t to = (me + i) % n;
    const std::size_t from = (me + n - i) % n;
    send_coll(ctx, g, seq, static_cast<int>(i), to, send + to * bytes_per_rank,
              bytes_per_rank, pending);
    core::Buf data = wait_coll(ctx, g, seq, static_cast<int>(i), from);
    assert(data.size() == bytes_per_rank);
    std::memcpy(recv + from * bytes_per_rank, data.data(), bytes_per_rank);
  }
  drain_sends(ctx, pending);
}

void gather(Context& ctx, Geometry& g, std::size_t root_rank, const void* sendbuf, void* recvbuf,
            std::size_t bytes_per_rank) {
  const std::size_t n = g.size();
  const std::size_t me = *g.rank_of(ctx.client().task());
  const std::uint64_t seq = next_seq(ctx.client(), g);
  if (me == root_rank) {
    auto* recv = static_cast<std::byte*>(recvbuf);
    std::memcpy(recv + me * bytes_per_rank, sendbuf, bytes_per_rank);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == root_rank) continue;
      core::Buf data = wait_coll(ctx, g, seq, 2, r);
      assert(data.size() == bytes_per_rank);
      std::memcpy(recv + r * bytes_per_rank, data.data(), bytes_per_rank);
    }
  } else {
    std::atomic<int> pending{0};
    send_coll(ctx, g, seq, 2, root_rank, sendbuf, bytes_per_rank, pending);
    drain_sends(ctx, pending);
  }
}

void allgather(Context& ctx, Geometry& g, const void* sendbuf, void* recvbuf,
               std::size_t bytes_per_rank) {
  // Gather to rank 0 then broadcast the concatenation; both legs ride the
  // accelerated paths when the geometry is optimized (broadcast does).
  gather(ctx, g, 0, sendbuf, recvbuf, bytes_per_rank);
  broadcast(ctx, g, 0, recvbuf, bytes_per_rank * g.size());
}

namespace {

/// Cached rectangle-broadcast trees + per-color children lists. Each child
/// entry carries the torus hint bits that force the parent->child hop onto
/// the link the color tree claimed: in an extent-2 ring both directions
/// reach the child, and an unhinted send would let the router collapse the
/// dimension's two color trees onto one wire.
struct RectTrees {
  struct Kid {
    int node = 0;
    std::uint16_t hints = 0;
  };
  explicit RectTrees(const hw::TorusGeometry& torus, const hw::TorusRectangle& rect, int root)
      : trees(torus, rect, root) {
    children.resize(static_cast<std::size_t>(trees.colors()));
    for (int c = 0; c < trees.colors(); ++c) {
      auto& per_node = children[static_cast<std::size_t>(c)];
      for (int node : trees.delivery_order(c)) {
        const int p = trees.parent(c, node);
        if (p < 0) continue;
        per_node[p].push_back(
            Kid{node, hw::hint_for_link(torus, p, node, trees.parent_link_index(c, node))});
      }
    }
  }
  sim::MulticolorRectBcast trees;
  std::vector<std::map<int, std::vector<Kid>>> children;  // per color: node -> kids
};

/// Chunk index of the next acknowledgment a parent expects from a child
/// that has confirmed `acked` chunks: children ack every kRectAckChunks-th
/// chunk and always the last one.
std::uint32_t rect_ack_point(std::uint32_t acked, std::uint32_t nchunks) {
  const std::uint32_t kp = (acked / kRectAckChunks) * kRectAckChunks + (kRectAckChunks - 1);
  return std::min(kp, nchunks - 1);
}

}  // namespace

void rectangle_broadcast(Context& ctx, Geometry& g, std::size_t root_rank, void* buffer,
                         std::size_t bytes) {
  CollState& st = state_of(ctx.client());
  if (!g.rectangle_eligible()) {
    // The caller asked for torus color trees and is getting the k-nomial
    // software tree instead — a large silent perf cliff on a misconfigured
    // job. Count every degradation and warn once per process.
    st.obs.pvars.add(obs::Pvar::CollRectFallbacks);
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "pamix: rectangle_broadcast on non-rectangle geometry %d falls back to "
                   "the regular broadcast (counted in coll.rect_fallbacks)\n",
                   g.id());
    }
    broadcast(ctx, g, root_rank, buffer, bytes);
    return;
  }
  runtime::Machine& m = ctx.client().machine();
  LocalInfo li = local_info(ctx, g);
  const int my_task = ctx.client().task();
  const int my_node = m.node_of_task(my_task);
  const int root_task = g.task_of(root_rank);
  const int root_node = m.node_of_task(root_task);

  // The trees are rooted at the root's node; rebuilding for a new root is
  // legitimate (the hardware reprograms nothing — this is software), but
  // the cache keeps the common fixed-root case cheap.
  auto rt = g.cached<RectTrees>([&] {
    return std::make_shared<RectTrees>(m.geometry(), *g.topology().rectangle(), root_node);
  });
  if (rt->trees.colors() > 0 && rt->trees.delivery_order(0).front() != root_node) {
    // Cached trees rooted elsewhere: build privately for this call.
    rt = std::make_shared<RectTrees>(m.geometry(), *g.topology().rectangle(), root_node);
  }
  const std::uint64_t seq = next_seq(ctx.client(), g);

  if (my_task == root_task) li.group->root_slot.publish(buffer);
  local_barrier(ctx, li);

  std::atomic<int> pending{0};
  if (li.is_master) {
    auto* buf = static_cast<std::byte*>(buffer);
    if (my_node == root_node && my_task != root_task) {
      const void* src = li.group->root_slot.ptr.load(std::memory_order_acquire);
      std::memcpy(buf, peer_read(ctx, root_task, src, bytes), bytes);
    }
    // Slice the message across colors and relay each slice down its tree.
    // (A single-node rectangle has no colors and nothing to relay.)
    const int ncolors = rt->trees.colors();
    const std::size_t base = ncolors > 0 ? bytes / static_cast<std::size_t>(ncolors) : 0;
    const std::size_t rem = ncolors > 0 ? bytes % static_cast<std::size_t>(ncolors) : 0;
    const std::size_t C = tuning().rect_chunk;
    if (C == 0) {
      // Store-and-forward: each interior master receives its whole color
      // slice before forwarding it. The pre-cut-through schedule, kept as
      // the A/B baseline arm (PAMIX_RECT_CHUNK=0).
      std::size_t off = 0;
      for (int c = 0; c < ncolors; ++c) {
        const std::size_t len = base + (static_cast<std::size_t>(c) < rem ? 1 : 0);
        const int phase = 1000 + c;
        if (my_node != root_node) {
          const int parent_node = rt->trees.parent(c, my_node);
          const int parent_master = g.node_group(parent_node).master_task;
          core::Buf slice = wait_coll(ctx, g, seq, phase, *g.rank_of(parent_master));
          assert(slice.size() == len);
          if (len > 0) std::memcpy(buf + off, slice.data(), len);
        }
        const auto kids = rt->children[static_cast<std::size_t>(c)].find(my_node);
        if (kids != rt->children[static_cast<std::size_t>(c)].end()) {
          for (const RectTrees::Kid& kid : kids->second) {
            const int child_master = g.node_group(kid.node).master_task;
            send_coll(ctx, g, seq, phase, *g.rank_of(child_master), buf + off, len, pending,
                      /*chunk=*/0, kid.hints);
          }
        }
        off += len;
      }
      drain_sends(ctx, pending);  // children pull slices from our buffer
    } else {
      // Cut-through: every color slice streams in C-byte chunks, phase
      // 1000+c carrying the chunk index. An interior master forwards chunk
      // k the moment it lands, while chunk k+1 is still in flight — the
      // relay never waits for a whole slice, so deep trees cost one chunk
      // of fill latency instead of one slice per hop. Children return acks
      // on phase 2000+c at every rect_ack_point; a master stops forwarding
      // a color once any child trails by kRectWindowChunks, bounding the
      // pooled deposits a slow subtree can accumulate.
      if (st.rect.size() < static_cast<std::size_t>(ncolors)) {
        st.rect.resize(static_cast<std::size_t>(ncolors));
      }
      // Pre-size the deposit pool to the schedule's high-water: the ack
      // window bounds untaken parent chunks at kRectWindowChunks per
      // color, and back-to-back broadcasts overlap by at most one
      // iteration (a parent starts seq+1 only after we acked — i.e.
      // landed — all of seq), so 2*W*colors chunks covers any interleave.
      // Demand timing is scheduler-dependent; reserving up front makes
      // the steady-state miss count deterministically zero instead of
      // "zero once jitter has explored the peak".
      st.reserve(C, 2 * kRectWindowChunks * static_cast<std::size_t>(ncolors));
      std::uint64_t inflight = 0;  // forwarded-but-unacked chunks, all colors
      int remaining = 0;
      std::size_t off = 0;
      for (int c = 0; c < ncolors; ++c) {
        CollState::RectColor& rc = st.rect[static_cast<std::size_t>(c)];
        rc.off = off;
        rc.len = base + (static_cast<std::size_t>(c) < rem ? 1 : 0);
        off += rc.len;
        rc.nchunks = static_cast<std::uint32_t>((rc.len + C - 1) / C);
        rc.recv_next = 0;
        rc.fwd_next = 0;
        rc.done = false;
        rc.parent_rank = -1;
        if (my_node != root_node) {
          const int parent_node = rt->trees.parent(c, my_node);
          rc.parent_rank =
              static_cast<int>(*g.rank_of(g.node_group(parent_node).master_task));
        }
        const auto kids = rt->children[static_cast<std::size_t>(c)].find(my_node);
        const std::size_t nkids = kids != rt->children[static_cast<std::size_t>(c)].end()
                                      ? kids->second.size()
                                      : 0;
        rc.acked.assign(nkids, 0);  // reuses capacity after the first call
        ++remaining;
      }
      ProgressSpin spin(ctx);
      while (remaining > 0) {
        bool progressed = false;
        for (int c = 0; c < ncolors; ++c) {
          CollState::RectColor& rc = st.rect[static_cast<std::size_t>(c)];
          if (rc.done) continue;
          const int phase = 1000 + c;
          const auto kit = rt->children[static_cast<std::size_t>(c)].find(my_node);
          const std::vector<RectTrees::Kid>* kids =
              kit != rt->children[static_cast<std::size_t>(c)].end() ? &kit->second : nullptr;
          // 1. Land the next chunk from the parent; ack at ack points.
          if (rc.parent_rank >= 0 && rc.recv_next < rc.nchunks) {
            core::Buf data;
            const std::int32_t parent_task =
                g.task_of(static_cast<std::size_t>(rc.parent_rank));
            if (st.take(g.id(), seq, phase, parent_task, data, rc.recv_next)) {
              const std::uint32_t k = rc.recv_next;
              const std::size_t clen = std::min(C, rc.len - static_cast<std::size_t>(k) * C);
              assert(data.size() == clen);
              std::memcpy(buf + rc.off + static_cast<std::size_t>(k) * C, data.data(), clen);
              rc.recv_next = k + 1;
              if ((k + 1) % kRectAckChunks == 0 || k + 1 == rc.nchunks) {
                send_coll(ctx, g, seq, 2000 + c, static_cast<std::size_t>(rc.parent_rank),
                          nullptr, 0, pending, /*chunk=*/k);
              }
              progressed = true;
            }
          }
          // 2. Collect child acks (each ack point is deterministic, so the
          // expected chunk index is computable from the confirmed count).
          if (kids != nullptr) {
            for (std::size_t i = 0; i < kids->size(); ++i) {
              while (rc.acked[i] < rc.fwd_next) {
                const std::uint32_t kp = rect_ack_point(rc.acked[i], rc.nchunks);
                if (kp >= rc.fwd_next) break;  // not yet forwarded, so not yet acked
                core::Buf ack;
                const std::int32_t kid_task = g.node_group((*kids)[i].node).master_task;
                if (!st.take(g.id(), seq, 2000 + c, kid_task, ack, kp)) break;
                inflight -= kp + 1 - rc.acked[i];
                rc.acked[i] = kp + 1;
                progressed = true;
              }
            }
            // 3. Forward every landed-and-unforwarded chunk the ack window
            // allows (at the root node the whole buffer is already local).
            const std::uint32_t avail = rc.parent_rank < 0 ? rc.nchunks : rc.recv_next;
            while (rc.fwd_next < avail) {
              bool window_open = true;
              for (std::uint32_t a : rc.acked) {
                if (rc.fwd_next >= a + kRectWindowChunks) window_open = false;
              }
              if (!window_open) break;
              const std::uint32_t k = rc.fwd_next;
              const std::size_t clen = std::min(C, rc.len - static_cast<std::size_t>(k) * C);
              const std::uint64_t t0 = obs::now_ns();
              for (const RectTrees::Kid& kid : *kids) {
                send_coll(ctx, g, seq, phase,
                          *g.rank_of(g.node_group(kid.node).master_task),
                          buf + rc.off + static_cast<std::size_t>(k) * C, clen, pending, k,
                          kid.hints);
              }
              ctx.obs().trace.record_span(obs::TraceEv::RectChunkRelay, t0,
                                          static_cast<std::uint32_t>(clen));
              st.obs.pvars.add(obs::Pvar::CollRectChunks);
              inflight += kids->size();
              if (inflight > st.rect_inflight_peak) {
                st.obs.pvars.add(obs::Pvar::CollRectInflightPeak,
                                 inflight - st.rect_inflight_peak);
                st.rect_inflight_peak = inflight;
              }
              rc.fwd_next = k + 1;
              progressed = true;
            }
          }
          // 4. A color is done once its slice has fully landed and every
          // child has confirmed the whole relay (so no deposit is leaked
          // into the next operation's matching space).
          bool finished = rc.parent_rank < 0 || rc.recv_next == rc.nchunks;
          if (kids != nullptr) {
            if (rc.fwd_next != rc.nchunks) finished = false;
            for (std::uint32_t a : rc.acked) {
              if (a != rc.nchunks) finished = false;
            }
          }
          if (finished) {
            rc.done = true;
            --remaining;
            progressed = true;
          }
        }
        if (!progressed) spin.spin();
      }
      drain_sends(ctx, pending);  // rendezvous-sized chunks pull from our buffer
    }
    li.group->master_slot.publish(buffer);
  }
  local_barrier(ctx, li);

  if (!li.is_master && my_task != root_task) {
    const void* mbuf = li.group->master_slot.ptr.load(std::memory_order_acquire);
    std::memcpy(buffer, peer_read(ctx, li.group->master_task, mbuf, bytes), bytes);
  }
  local_barrier(ctx, li);
}

void reduce_scatter(Context& ctx, Geometry& g, const void* sendbuf, void* recvbuf,
                    std::size_t bytes_per_rank, hw::CombineOp op, hw::CombineType type) {
  // Full-vector reduce (collective network when optimized) then keep my
  // block — the BG/Q collective network has no native scatter phase, so
  // pamid's reduce_scatter is exactly reduce + local selection.
  const std::size_t me = *g.rank_of(ctx.client().task());
  core::Buf full = state_of(ctx.client()).acquire(bytes_per_rank * g.size());
  allreduce(ctx, g, sendbuf, full.data(), full.size(), op, type);
  std::memcpy(recvbuf, full.data() + me * bytes_per_rank, bytes_per_rank);
}

void scatter(Context& ctx, Geometry& g, std::size_t root_rank, const void* sendbuf, void* recvbuf,
             std::size_t bytes_per_rank) {
  const std::size_t n = g.size();
  const std::size_t me = *g.rank_of(ctx.client().task());
  const std::uint64_t seq = next_seq(ctx.client(), g);
  if (me == root_rank) {
    const auto* send = static_cast<const std::byte*>(sendbuf);
    std::memcpy(recvbuf, send + me * bytes_per_rank, bytes_per_rank);
    std::atomic<int> pending{0};
    for (std::size_t r = 0; r < n; ++r) {
      if (r == root_rank) continue;
      send_coll(ctx, g, seq, 3, r, send + r * bytes_per_rank, bytes_per_rank, pending);
    }
    drain_sends(ctx, pending);
  } else {
    core::Buf data = wait_coll(ctx, g, seq, 3, root_rank);
    assert(data.size() == bytes_per_rank);
    std::memcpy(recvbuf, data.data(), bytes_per_rank);
  }
}

}  // namespace pamix::pami::coll
