// Figure 7 — MPI_Allreduce (MPI_DOUBLE, MPI_SUM) latency for one double,
// node sweep to 2048, ppn in {1, 4, 16}.
//
//   Paper anchors at 2048 nodes: 5.5 us (ppn1), 5.0 us (ppn4), 5.3 us
//   (ppn16) — note the dip at ppn=4: the shared-address protocol lets
//   node peers take over the result copy-out, shortening the master's
//   critical path, while larger ppn grows the local combine again.
//
// Host phases beyond the latency sweep:
//   * a 2MB pipelined allreduce run twice — overlap pipeline OFF (the
//     pre-pipeline schedule: master blocks on every network round) then
//     ON (Figure 4: network round k concurrent with local math of k+1) —
//     so the JSON carries its own before/after;
//   * a software-path (non-optimized geometry) steady-state phase whose
//     pool-miss delta must be zero under PAMIX_BENCH_STRICT_ALLOC.
//
// With PAMIX_OBS=on each host run also prints its pvar delta (collective
// rounds, sends, advance calls) and main exports trace rings to
// PAMIX_TRACE_FILE. Results land in BENCH_fig7.json.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/collectives.h"
#include "mpi/mpi.h"
#include "sim/collective_model.h"

namespace {

using namespace pamix;

double host_allreduce_us(int ppn, int iters) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), ppn);
  mpi::MpiWorld world(machine, mpi::MpiConfig{});
  double us = 0;
  machine.run_spmd([&](int task) {
    mpi::Mpi& mp = world.at(task);
    mp.init(mpi::ThreadLevel::Single);
    const mpi::Comm w = mp.world();
    double in = task, out = 0;
    for (int i = 0; i < 50; ++i) {
      mp.allreduce(&in, &out, 1, mpi::Type::Double, mpi::Op::Add, w);
    }
    bench::Stopwatch sw;
    for (int i = 0; i < iters; ++i) {
      mp.allreduce(&in, &out, 1, mpi::Type::Double, mpi::Op::Add, w);
    }
    if (mp.rank(w) == 0) us = sw.elapsed_us() / iters;
    mp.finalize();
  });
  return us;
}

/// 2MB allreduce on 4 nodes x 2 ppn with the slice pipeline's overlap
/// forced on or off; returns MB/s and (optionally) the measured-phase
/// pvar delta so the caller can report slice/round/occupancy counters.
double host_allreduce_2mb_mb_s(bool overlap, int iters, obs::PvarSnapshot* measured_delta) {
  const bool saved = pami::coll::tuning().overlap;
  pami::coll::tuning().overlap = overlap;
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), 2);
  mpi::MpiWorld world(machine, mpi::MpiConfig{});
  const std::size_t count = 1u << 18;  // 2MB of doubles: many pipeline slices
  double mbps = 0;
  obs::PvarSnapshot delta;
  machine.run_spmd([&](int task) {
    mpi::Mpi& mp = world.at(task);
    mp.init(mpi::ThreadLevel::Single);
    const mpi::Comm w = mp.world();
    std::vector<double> in(count, 1.0), out(count);
    for (int i = 0; i < 2; ++i) {
      mp.allreduce(in.data(), out.data(), count, mpi::Type::Double, mpi::Op::Add, w);
    }
    mp.barrier(w);
    bench::PvarPhase phase;
    bench::Stopwatch sw;
    for (int i = 0; i < iters; ++i) {
      mp.allreduce(in.data(), out.data(), count, mpi::Type::Double, mpi::Op::Add, w);
    }
    mp.barrier(w);
    if (mp.rank(w) == 0) {
      mbps = iters * count * sizeof(double) / sw.elapsed_us();
      delta = phase.delta();
    }
    if (out[count / 2] != 8.0) std::printf("  VERIFICATION FAILED\n");
    mp.finalize();
  });
  if (measured_delta != nullptr) *measured_delta = delta;
  pami::coll::tuning().overlap = saved;
  return mbps;
}

/// Software-path steady state: collectives on a 3-rank split communicator
/// (k-nomial trees over active messages — no classroute). Two warm-up
/// passes fill the payload pools and flat match slots; the measured pass
/// must then run without a single pool miss.
double host_software_allreduce_us(int iters, obs::PvarSnapshot* measured_delta) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), 1);
  mpi::MpiWorld world(machine, mpi::MpiConfig{});
  double us = 0;
  obs::PvarSnapshot delta;
  machine.run_spmd([&](int task) {
    mpi::Mpi& mp = world.at(task);
    mp.init(mpi::ThreadLevel::Single);
    const mpi::Comm w = mp.world();
    const mpi::Comm c = mp.split(w, mp.rank(w) < 3 ? 0 : 1, mp.rank(w));
    if (mp.rank(w) < 3) {
      std::vector<double> in(8, 1.0), out(8);
      std::vector<std::byte> payload(64, std::byte{0x42});
      auto pass = [&](int n) {
        mp.barrier(c);
        for (int i = 0; i < n; ++i) {
          mp.bcast(payload.data(), payload.size(), 0, c);
          mp.allreduce(in.data(), out.data(), 8, mpi::Type::Double, mpi::Op::Add, c);
        }
        mp.barrier(c);
      };
      pass(iters);  // warm-up: pools and slot tables fill
      pass(iters);  // covers the pass->pass transition pattern too
      bench::PvarPhase phase;
      bench::Stopwatch sw;
      pass(iters);
      if (mp.rank(c) == 0) {
        us = sw.elapsed_us() / iters;
        delta = phase.delta();
      }
      if (out[0] != 3.0) std::printf("  VERIFICATION FAILED\n");
    }
    mp.barrier(w);
    mp.finalize();
  });
  if (measured_delta != nullptr) *measured_delta = delta;
  return us;
}

}  // namespace

int main() {
  bench::header("FIGURE 7 — MPI_Allreduce latency, 1 double (us)");

  std::printf("%-8s %10s %10s %10s\n", "nodes", "ppn=1", "ppn=4", "ppn=16");
  std::printf("------------------------------------------\n");
  for (int nodes : {32, 64, 128, 256, 512, 1024, 2048}) {
    const sim::CollectiveModel m(bench::geometry_for_nodes(nodes), sim::BgqCostModel{});
    std::printf("%-8d %10.2f %10.2f %10.2f\n", nodes, m.allreduce_latency_us(1),
                m.allreduce_latency_us(4), m.allreduce_latency_us(16));
  }
  std::printf("\nPaper anchors @2048 nodes: 5.5 / 5.0 / 5.3 us for ppn 1 / 4 / 16\n"
              "(the ppn=4 dip comes from the shared-address copy-out offload).\n");

  bench::JsonResult json;
  const int kIters = bench::env_iters("PAMIX_FIG7_ITERS", 2000);
  json.add("iters", static_cast<std::uint64_t>(kIters));

  std::printf("\nFunctional host run (real collective-network engine, 4 nodes):\n");
  for (int ppn : {1, 2, 4}) {
    bench::PvarPhase phase;
    const double us = host_allreduce_us(ppn, kIters);
    std::printf("  ppn=%d : %8.2f us/allreduce\n", ppn, us);
    char key[48];
    std::snprintf(key, sizeof(key), "latency_us_ppn%d", ppn);
    json.add(key, us);
    std::snprintf(key, sizeof(key), "allreduce ppn=%d", ppn);
    phase.report(key);
  }

  // Pipelined 2MB allreduce: overlap OFF is the pre-pipeline schedule
  // (network round k fully drains before slice k+1's local math starts);
  // overlap ON is the Figure-4 schedule. Same binary, same machine — the
  // delta is purely the pipeline.
  const int kBwIters = bench::env_iters("PAMIX_FIG7_BW_ITERS", 3);
  std::printf("\nPipelined 2MB allreduce (4 nodes x 2 ppn, %d iters):\n", kBwIters);
  const double off = host_allreduce_2mb_mb_s(false, kBwIters, nullptr);
  obs::PvarSnapshot on_delta;
  const double on = host_allreduce_2mb_mb_s(true, kBwIters, &on_delta);
  std::printf("  overlap OFF (blocking rounds) : %8.0f MB/s\n", off);
  std::printf("  overlap ON  (Figure-4 pipeline): %7.0f MB/s  (%.2fx)\n", on, on / off);
  const std::uint64_t occupancy = on_delta[obs::Pvar::CollOverlapBytes];
  std::printf("  coll pvars (ON arm): slices=%llu net_rounds=%llu overlap_occupancy=%llu "
              "local_reduce=%llu : %s\n",
              static_cast<unsigned long long>(on_delta[obs::Pvar::CollSlices]),
              static_cast<unsigned long long>(on_delta[obs::Pvar::CollNetRounds]),
              static_cast<unsigned long long>(occupancy),
              static_cast<unsigned long long>(on_delta[obs::Pvar::CollLocalReduceBytes]),
              occupancy > 0 ? "OK" : "NO OVERLAP (unexpected)");
  json.add("allreduce_2mb_overlap_off_mb_s", off);
  json.add("allreduce_2mb_overlap_on_mb_s", on);
  json.add("overlap_speedup", on / off);
  json.add("coll.slices", on_delta[obs::Pvar::CollSlices]);
  json.add("coll.net_rounds", on_delta[obs::Pvar::CollNetRounds]);
  json.add("coll.overlap_occupancy", occupancy);
  json.add("coll.local_reduce_bytes", on_delta[obs::Pvar::CollLocalReduceBytes]);

  // Software path (non-optimized 3-rank communicator): latency plus the
  // steady-state allocation discipline of the k-nomial engine.
  const int kSwIters = bench::env_iters("PAMIX_FIG7_SW_ITERS", 256);
  obs::PvarSnapshot sw_delta;
  const double sw_us = host_software_allreduce_us(kSwIters, &sw_delta);
  const std::uint64_t sw_misses = sw_delta[obs::Pvar::AllocPoolMisses];
  std::printf("\nSoftware path (3-rank split comm, k-nomial over active messages):\n");
  std::printf("  %8.2f us/iteration (bcast + allreduce); sw_deposits=%llu "
              "pool_misses=%llu\n",
              sw_us, static_cast<unsigned long long>(sw_delta[obs::Pvar::CollSwDeposits]),
              static_cast<unsigned long long>(sw_misses));
  json.add("software_iter_us", sw_us);
  json.add("coll.sw_deposits", sw_delta[obs::Pvar::CollSwDeposits]);
  json.add("sw.pool_misses", sw_misses);
  json.write("BENCH_fig7.json");

  bench::obs_finish();

  // CI gate: a pool miss in the measured software-collective steady state
  // means something on the collective fast path stopped recycling.
  if (std::getenv("PAMIX_BENCH_STRICT_ALLOC") != nullptr && sw_misses > 0) {
    std::fprintf(stderr,
                 "fig7: PAMIX_BENCH_STRICT_ALLOC: %llu pool misses in the measured "
                 "software-collective phase (expected 0)\n",
                 static_cast<unsigned long long>(sw_misses));
    return 1;
  }
  return 0;
}
