file(REMOVE_RECURSE
  "libpamix_core.a"
)
