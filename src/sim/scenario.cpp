#include "sim/scenario.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "core/client.h"
#include "core/context.h"
#include "core/geometry.h"
#include "core/topology.h"
#include "runtime/des_network.h"
#include "runtime/machine.h"
#include "sim/rect_bcast.h"

namespace pamix::sim {

namespace {

// Dispatch ids used by the scenario state machines (well below the 4096
// entry dispatch table; disjoint from the test/bench ids which start low).
constexpr pami::DispatchId kDisBarrierUp = 3001;
constexpr pami::DispatchId kDisBarrierDown = 3002;
constexpr pami::DispatchId kDisArUp = 3003;
constexpr pami::DispatchId kDisArDown = 3004;
constexpr pami::DispatchId kDisBcast = 3005;
constexpr pami::DispatchId kDisSink = 3006;
constexpr pami::DispatchId kDisPing = 3007;

// Small enough that an eager message is always a single packet (payload +
// user header + protocol header fit in the 512-byte MU chunk), so traffic
// scenarios need no landing buffers.
constexpr std::size_t kSmallMsgBytes = 256;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[noreturn]] void fail(const char* what) { throw std::runtime_error(what); }

/// send() with sender-side drain on Eagain. Eagain hands the (move-only)
/// callbacks back in `p`, so retrying with the same params is safe; the
/// DES backend never refuses a transmit, so draining the sender's
/// injection path always clears the condition.
void send_from(ScenarioWorld& w, int node, pami::SendParams& p) {
  pami::Context& c = w.ctx(node);
  for (int spins = 0;; ++spins) {
    const pami::Result r = c.send(std::move(p));
    if (r == pami::Result::Success) {
      w.mark_dirty(node);
      return;
    }
    if (r != pami::Result::Eagain || spins > 1'000'000) fail("scenario: send failed");
    w.pump(node);
    w.net().advance_time();
  }
}

void send_immediate_from(ScenarioWorld& w, int node, pami::DispatchId dispatch, int dest,
                         const void* header, std::size_t header_bytes) {
  pami::Context& c = w.ctx(node);
  for (int spins = 0;; ++spins) {
    const pami::Result r = c.send_immediate(dispatch, pami::Endpoint{dest, 0}, header,
                                            header_bytes, nullptr, 0);
    if (r == pami::Result::Success) {
      w.mark_dirty(node);
      return;
    }
    if (r != pami::Result::Eagain || spins > 1'000'000) fail("scenario: immediate send failed");
    w.pump(node);
    w.net().advance_time();
  }
}

int tree_parent(int node, int radix) { return (node - 1) / radix; }

int tree_child_count(int node, int radix, int n) {
  const long long first = static_cast<long long>(node) * radix + 1;
  if (first >= n) return 0;
  const long long last = std::min<long long>(first + radix - 1, n - 1);
  return static_cast<int>(last - first + 1);
}

}  // namespace

// ---- ScenarioWorld ---------------------------------------------------------

ScenarioWorld::ScenarioWorld(ScenarioOptions opt) : opt_(opt) {
  runtime::MachineOptions mo;
  mo.inj_fifo_capacity = opt_.inj_fifo_capacity;
  mo.rec_fifo_capacity = opt_.rec_fifo_capacity;
  mo.backend = hw::NetBackendKind::Des;
  mo.sim_seed = opt_.seed;
  mo.link_skew_pct = opt_.link_skew_pct;
  mo.des_auto_advance = false;  // the run() loop owns the virtual clock
  machine_ = std::make_unique<runtime::Machine>(opt_.geom, /*ppn=*/1, mo);
  net_ = machine_->des_network();
  if (net_ == nullptr) fail("scenario: machine has no DES backend");

  pami::ClientConfig cc;
  cc.name = "scenario";
  cc.contexts_per_task = 1;
  cc.eager_limit = opt_.eager_limit;
  cc.send_fifos_per_context = opt_.send_fifos_per_context;
  cc.work_queue_capacity = opt_.work_queue_capacity;
  cc.shm_queue_capacity = opt_.shm_queue_capacity;
  world_ = std::make_unique<pami::ClientWorld>(*machine_, cc);

  const int n = machine_->node_count();
  dirty_.assign(static_cast<std::size_t>(n), 1);
  dirty_queue_.resize(static_cast<std::size_t>(n));
  std::iota(dirty_queue_.begin(), dirty_queue_.end(), 0);
  net_->set_delivery_listener([this](int node) { mark_dirty(node); });
}

ScenarioWorld::~ScenarioWorld() {
  if (net_ != nullptr) net_->set_delivery_listener(nullptr);
}

pami::Context& ScenarioWorld::ctx(int node) { return world_->client(node).context(0); }

int ScenarioWorld::nodes() const { return machine_->node_count(); }

double ScenarioWorld::now_us() const { return net_->now_us(); }

void ScenarioWorld::mark_dirty(int node) {
  if (dirty_[static_cast<std::size_t>(node)]) return;
  dirty_[static_cast<std::size_t>(node)] = 1;
  dirty_queue_.push_back(node);
}

void ScenarioWorld::pump(int node) {
  pami::Context& c = ctx(node);
  while (c.advance(1) > 0) {
  }
}

void ScenarioWorld::run() {
  for (;;) {
    // Sweep the dirty set. Handlers may re-dirty nodes (sends only create
    // future DES events, deliveries only happen in advance_time), so one
    // indexed pass over the growing queue is a complete sweep.
    for (std::size_t i = 0; i < dirty_queue_.size(); ++i) {
      const int node = dirty_queue_[i];
      dirty_[static_cast<std::size_t>(node)] = 0;
      pump(node);
    }
    dirty_queue_.clear();
    // Software quiesced: move the virtual clock one event batch. Deliveries
    // re-dirty their nodes through the listener.
    if (!net_->advance_time() && dirty_queue_.empty()) break;
  }
}

obs::PvarSnapshot ScenarioWorld::net_pvars() const { return net_->obs().pvars.snapshot(); }

// ---- Tree barrier ----------------------------------------------------------

namespace {

struct BarrierState {
  ScenarioWorld* w = nullptr;
  int n = 0;
  int radix = 0;
  std::vector<int> arrived;
  std::vector<int> child_count;
  double last_release = 0.0;
  int released = 0;
  char token = 1;

  void subtree_ready(int node);
  void release(int node);
};

void BarrierState::subtree_ready(int node) {
  if (node == 0) {
    release(0);
    return;
  }
  send_immediate_from(*w, node, kDisBarrierUp, tree_parent(node, radix), &token, 1);
}

void BarrierState::release(int node) {
  ++released;
  last_release = w->now_us();
  const int first = node * radix + 1;
  for (int c = first; c < first + radix && c < n; ++c) {
    send_immediate_from(*w, node, kDisBarrierDown, c, &token, 1);
  }
}

}  // namespace

BarrierStats scenario_tree_barrier(ScenarioWorld& w, int radix) {
  const int n = w.nodes();
  BarrierState st;
  st.w = &w;
  st.n = n;
  st.radix = radix;
  st.arrived.assign(static_cast<std::size_t>(n), 0);
  st.child_count.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) st.child_count[static_cast<std::size_t>(i)] = tree_child_count(i, radix, n);

  BarrierState* s = &st;
  for (int i = 0; i < n; ++i) {
    pami::Context& c = w.ctx(i);
    c.set_dispatch(kDisBarrierUp,
                   [s](pami::Context& ctx, const void*, std::size_t, const void*, std::size_t,
                       std::size_t, pami::Endpoint, pami::RecvDescriptor*) {
                     const int node = ctx.client().task();
                     if (++s->arrived[static_cast<std::size_t>(node)] ==
                         s->child_count[static_cast<std::size_t>(node)]) {
                       s->subtree_ready(node);
                     }
                   });
    c.set_dispatch(kDisBarrierDown,
                   [s](pami::Context& ctx, const void*, std::size_t, const void*, std::size_t,
                       std::size_t, pami::Endpoint, pami::RecvDescriptor*) {
                     s->release(ctx.client().task());
                   });
  }

  const double t0 = w.now_us();
  // Leaves enter the barrier; interior nodes are "already blocked" and
  // report up as soon as their subtree completes.
  for (int i = 0; i < n; ++i) {
    if (st.child_count[static_cast<std::size_t>(i)] == 0) st.subtree_ready(i);
  }
  w.run();
  if (st.released != n) fail("scenario: barrier did not release every node");

  BarrierStats out;
  out.radix = radix;
  out.latency_us = st.last_release - t0;
  int depth = 0;
  for (long long span = 1; span < n; span = span * radix + 1) ++depth;
  out.depth = depth;
  return out;
}

// ---- Pipelined allreduce ---------------------------------------------------

namespace {

struct ChunkHdr {
  std::uint32_t chunk = 0;
};

struct ArState {
  ScenarioWorld* w = nullptr;
  int n = 0;
  int radix = 0;
  int nchunks = 0;
  std::size_t bytes = 0;
  std::size_t chunk = 0;
  std::vector<std::vector<double>> acc;            // [node] local → global values
  std::vector<std::vector<std::byte>> rx;          // [node*radix+slot] landing buffers
  std::vector<std::vector<std::uint8_t>> contrib;  // [node][chunk] children heard
  std::vector<int> child_count;
  std::vector<int> down_seen;  // [node] completed chunks delivered down
  int done_nodes = 0;
  double t_end = 0.0;

  std::size_t off(int c) const { return static_cast<std::size_t>(c) * chunk; }
  std::size_t len(int c) const { return std::min(chunk, bytes - off(c)); }

  void accumulate(int node, int c, const std::byte* src) {
    double* a = acc[static_cast<std::size_t>(node)].data() + off(c) / sizeof(double);
    const double* s = reinterpret_cast<const double*>(src);
    const std::size_t cnt = len(c) / sizeof(double);
    for (std::size_t i = 0; i < cnt; ++i) a[i] += s[i];
  }

  void send_chunk(int node, int dest, pami::DispatchId dispatch, int c) {
    ChunkHdr hdr{static_cast<std::uint32_t>(c)};
    pami::SendParams p;
    p.dispatch = dispatch;
    p.dest = pami::Endpoint{dest, 0};
    p.header = &hdr;
    p.header_bytes = sizeof(hdr);
    p.data = acc[static_cast<std::size_t>(node)].data() + off(c) / sizeof(double);
    p.data_bytes = len(c);
    send_from(*w, node, p);
  }

  void child_done(int node, int slot, int c) {
    accumulate(node, c, rx[static_cast<std::size_t>(node * radix + slot)].data());
    chunk_contributed(node, c);
  }

  void chunk_contributed(int node, int c) {
    auto& got = contrib[static_cast<std::size_t>(node)][static_cast<std::size_t>(c)];
    if (++got < child_count[static_cast<std::size_t>(node)]) return;
    chunk_ready(node, c);
  }

  /// Every child contributed chunk `c` at `node`: forward up, or complete
  /// at the root and start the downward broadcast.
  void chunk_ready(int node, int c) {
    if (node == 0) {
      down_done(0, c);
    } else {
      send_chunk(node, tree_parent(node, radix), kDisArUp, c);
    }
  }

  /// Chunk `c` now holds the global sum in `node`'s acc: forward down and
  /// count completion.
  void down_done(int node, int c) {
    const int first = node * radix + 1;
    for (int ch = first; ch < first + radix && ch < n; ++ch) {
      send_chunk(node, ch, kDisArDown, c);
    }
    if (++down_seen[static_cast<std::size_t>(node)] == nchunks) {
      if (++done_nodes == n) t_end = w->now_us();
    }
  }
};

int ar_chunk_of(const void* header, std::size_t header_bytes) {
  ChunkHdr hdr;
  if (header_bytes != sizeof(hdr)) fail("scenario: bad allreduce header");
  std::memcpy(&hdr, header, sizeof(hdr));
  return static_cast<int>(hdr.chunk);
}

}  // namespace

AllreduceStats scenario_allreduce(ScenarioWorld& w, std::size_t bytes, std::size_t chunk_bytes,
                                  int radix) {
  const int n = w.nodes();
  bytes = std::max<std::size_t>(sizeof(double), bytes / sizeof(double) * sizeof(double));
  chunk_bytes = std::max<std::size_t>(sizeof(double),
                                      chunk_bytes / sizeof(double) * sizeof(double));
  ArState st;
  st.w = &w;
  st.n = n;
  st.radix = radix;
  st.bytes = bytes;
  st.chunk = std::min(chunk_bytes, bytes);
  st.nchunks = static_cast<int>((bytes + st.chunk - 1) / st.chunk);
  const std::size_t values = bytes / sizeof(double);
  st.acc.assign(static_cast<std::size_t>(n), std::vector<double>(values, 1.0));
  st.rx.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(radix), {});
  st.contrib.assign(static_cast<std::size_t>(n),
                    std::vector<std::uint8_t>(static_cast<std::size_t>(st.nchunks), 0));
  st.child_count.resize(static_cast<std::size_t>(n));
  st.down_seen.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    st.child_count[static_cast<std::size_t>(i)] = tree_child_count(i, radix, n);
    for (int s = 0; s < st.child_count[static_cast<std::size_t>(i)]; ++s) {
      st.rx[static_cast<std::size_t>(i * radix + s)].resize(st.chunk);
    }
  }

  ArState* s = &st;
  for (int i = 0; i < n; ++i) {
    pami::Context& c = w.ctx(i);
    c.set_dispatch(
        kDisArUp, [s](pami::Context& ctx, const void* header, std::size_t header_bytes,
                      const void* pipe, std::size_t pipe_bytes, std::size_t total,
                      pami::Endpoint origin, pami::RecvDescriptor* recv) {
          const int node = ctx.client().task();
          const int c2 = ar_chunk_of(header, header_bytes);
          const int slot = origin.task - (node * s->radix + 1);
          std::byte* land = s->rx[static_cast<std::size_t>(node * s->radix + slot)].data();
          if (recv == nullptr) {
            // Whole chunk in one packet.
            if (pipe_bytes != total) fail("scenario: truncated allreduce chunk");
            std::memcpy(land, pipe, total);
            s->child_done(node, slot, c2);
            return;
          }
          recv->buffer = land;
          recv->bytes = total;
          recv->on_complete = [s, node, slot, c2] { s->child_done(node, slot, c2); };
        });
    c.set_dispatch(
        kDisArDown, [s](pami::Context& ctx, const void* header, std::size_t header_bytes,
                        const void* pipe, std::size_t pipe_bytes, std::size_t total,
                        pami::Endpoint, pami::RecvDescriptor* recv) {
          const int node = ctx.client().task();
          const int c2 = ar_chunk_of(header, header_bytes);
          // The final values land straight in the accumulation buffer: the
          // node's own contribution went up (staged) before the root could
          // possibly complete this chunk.
          std::byte* land = reinterpret_cast<std::byte*>(
              s->acc[static_cast<std::size_t>(node)].data() + s->off(c2) / sizeof(double));
          if (recv == nullptr) {
            if (pipe_bytes != total) fail("scenario: truncated allreduce chunk");
            std::memcpy(land, pipe, total);
            s->down_done(node, c2);
            return;
          }
          recv->buffer = land;
          recv->bytes = total;
          recv->on_complete = [s, node, c2] { s->down_done(node, c2); };
        });
  }

  const double t0 = w.now_us();
  for (int i = 0; i < n; ++i) {
    if (st.child_count[static_cast<std::size_t>(i)] != 0) continue;
    for (int c = 0; c < st.nchunks; ++c) st.chunk_ready(i, c);
  }
  w.run();
  if (st.done_nodes != n) fail("scenario: allreduce did not complete everywhere");

  AllreduceStats out;
  out.bytes = bytes;
  out.total_us = st.t_end - t0;
  out.bandwidth_mb_s = out.total_us > 0.0 ? static_cast<double>(bytes) / out.total_us : 0.0;
  const double expect = static_cast<double>(n);
  out.values_ok = true;
  for (int i = 0; i < n && out.values_ok; ++i) {
    const auto& a = st.acc[static_cast<std::size_t>(i)];
    // Full check on the root, endpoints elsewhere (exact: integer sums).
    if (i == 0) {
      for (double v : a) out.values_ok = out.values_ok && v == expect;
    } else {
      out.values_ok = a.front() == expect && a.back() == expect;
    }
  }
  return out;
}

// ---- Multicolor rectangle broadcast ---------------------------------------

namespace {

struct BcastHdr {
  std::uint32_t chunk = 0;
  std::uint16_t color = 0;
};

struct BcastState {
  ScenarioWorld* w = nullptr;
  int n = 0;
  int colors = 0;
  std::size_t chunk = 0;
  std::vector<std::size_t> color_off;    // [color] slice offset in payload
  std::vector<std::size_t> color_bytes;  // [color] slice length
  struct Edge {
    int child = 0;
    std::uint16_t hints = 0;  // forces the tree's claimed directed link
  };
  std::vector<std::vector<std::vector<Edge>>> children;  // [color][node]
  std::vector<std::byte> payload;                       // root's source
  std::vector<std::vector<std::byte>> rx;               // [node*colors+color]
  std::vector<std::size_t> received;                    // [node]
  std::vector<std::vector<std::byte>>* out = nullptr;
  std::size_t per_node_total = 0;
  std::uint64_t chunks = 0;  // verified chunk landings, all nodes
  int done_nodes = 0;
  double t_end = 0.0;

  std::size_t len(int color, int c) const {
    return std::min(chunk, color_bytes[static_cast<std::size_t>(color)] -
                               static_cast<std::size_t>(c) * chunk);
  }

  void send_chunk(int node, int color, int c, const std::byte* src) {
    BcastHdr hdr{static_cast<std::uint32_t>(c), static_cast<std::uint16_t>(color)};
    for (const Edge& e :
         children[static_cast<std::size_t>(color)][static_cast<std::size_t>(node)]) {
      pami::SendParams p;
      p.dispatch = kDisBcast;
      p.dest = pami::Endpoint{e.child, 0};
      p.header = &hdr;
      p.header_bytes = sizeof(hdr);
      p.data = src;
      p.data_bytes = len(color, c);
      p.hints = e.hints;
      send_from(*w, node, p);
    }
  }

  void landed(int node, int color, int c) {
    const std::byte* land = rx[static_cast<std::size_t>(node * colors + color)].data();
    const std::size_t l = len(color, c);
    send_chunk(node, color, c, land);  // forward before accounting: pipelining
    // Cut-through integrity: every landed chunk must equal the root's
    // bytes at this (color, chunk) slot — a relay bug (wrong offset, stale
    // landing buffer, crossed chunk ids) dies at the first bad hop instead
    // of surfacing as a scrambled final payload.
    if (std::memcmp(land,
                    payload.data() + color_off[static_cast<std::size_t>(color)] +
                        static_cast<std::size_t>(c) * chunk,
                    l) != 0) {
      fail("scenario: rect-bcast chunk payload mismatch");
    }
    ++chunks;
    if (out != nullptr) {
      std::memcpy((*out)[static_cast<std::size_t>(node)].data() +
                      color_off[static_cast<std::size_t>(color)] +
                      static_cast<std::size_t>(c) * chunk,
                  land, l);
    }
    received[static_cast<std::size_t>(node)] += l;
    if (received[static_cast<std::size_t>(node)] == per_node_total) {
      if (++done_nodes == n - 1) t_end = w->now_us();
    }
  }
};

}  // namespace

BcastStats scenario_rect_bcast(ScenarioWorld& w, std::size_t bytes, int colors,
                               std::size_t chunk_bytes,
                               std::vector<std::vector<std::byte>>* payload_out) {
  const int n = w.nodes();
  const hw::TorusGeometry& geom = w.machine().geometry();
  const hw::TorusRectangle rect = hw::TorusRectangle::whole_machine(geom);
  MulticolorRectBcast trees(geom, rect, /*root_node=*/0);
  if (!trees.validate()) fail("scenario: invalid rectangle broadcast trees");
  colors = std::max(1, std::min(colors, trees.colors()));

  BcastState st;
  st.w = &w;
  st.n = n;
  st.colors = colors;
  st.per_node_total = bytes;
  st.out = payload_out;

  // Slice the payload across the trees in use.
  st.color_off.resize(static_cast<std::size_t>(colors));
  st.color_bytes.resize(static_cast<std::size_t>(colors));
  const std::size_t base = bytes / static_cast<std::size_t>(colors);
  std::size_t off = 0;
  for (int c = 0; c < colors; ++c) {
    std::size_t l = base + (static_cast<std::size_t>(c) < bytes % static_cast<std::size_t>(colors) ? 1 : 0);
    st.color_off[static_cast<std::size_t>(c)] = off;
    st.color_bytes[static_cast<std::size_t>(c)] = l;
    off += l;
  }
  if (chunk_bytes == 0) {
    // Store-and-forward A/B arm: one "chunk" is a whole color slice, so an
    // interior node holds the entire slice before re-injecting it — the
    // schedule the cut-through pipeline is measured against.
    std::size_t widest = 1;
    for (std::size_t l : st.color_bytes) widest = std::max(widest, l);
    st.chunk = widest;
  } else {
    st.chunk = chunk_bytes;
  }

  // Child edges carry the torus hint of the tree's *claimed* directed
  // link: in extent-2 rings both directions reach the child, and without
  // the hint the router would collapse the dimension's two colors onto one
  // wire, halving the aggregate.
  st.children.assign(static_cast<std::size_t>(colors),
                     std::vector<std::vector<BcastState::Edge>>(static_cast<std::size_t>(n)));
  for (int c = 0; c < colors; ++c) {
    for (int node = 0; node < n; ++node) {
      const int p = trees.parent(c, node);
      if (p < 0) continue;
      BcastState::Edge e;
      e.child = node;
      e.hints = hw::hint_for_link(geom, p, node, trees.parent_link_index(c, node));
      st.children[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)].push_back(e);
    }
  }

  st.payload.resize(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    st.payload[i] = static_cast<std::byte>(splitmix64(i) & 0xff);
  }
  st.rx.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(colors), {});
  for (int node = 1; node < n; ++node) {
    for (int c = 0; c < colors; ++c) {
      st.rx[static_cast<std::size_t>(node * colors + c)].resize(st.chunk);
    }
  }
  st.received.assign(static_cast<std::size_t>(n), 0);
  if (payload_out != nullptr) {
    payload_out->assign(static_cast<std::size_t>(n), std::vector<std::byte>(bytes));
  }

  BcastState* s = &st;
  for (int i = 0; i < n; ++i) {
    w.ctx(i).set_dispatch(
        kDisBcast, [s](pami::Context& ctx, const void* header, std::size_t header_bytes,
                       const void* pipe, std::size_t pipe_bytes, std::size_t total,
                       pami::Endpoint, pami::RecvDescriptor* recv) {
          BcastHdr hdr;
          if (header_bytes != sizeof(hdr)) fail("scenario: bad broadcast header");
          std::memcpy(&hdr, header, sizeof(hdr));
          const int node = ctx.client().task();
          const int color = hdr.color;
          const int c2 = static_cast<int>(hdr.chunk);
          std::byte* land = s->rx[static_cast<std::size_t>(node * s->colors + color)].data();
          if (recv == nullptr) {
            if (pipe_bytes != total) fail("scenario: truncated broadcast chunk");
            std::memcpy(land, pipe, total);
            s->landed(node, color, c2);
            return;
          }
          recv->buffer = land;
          recv->bytes = total;
          recv->on_complete = [s, node, color, c2] { s->landed(node, color, c2); };
        });
  }

  const double t0 = w.now_us();
  // The root streams every chunk of every color; each color rides its own
  // edge-disjoint tree, so the root drives all its outgoing links at once.
  for (int c = 0; c < colors; ++c) {
    const std::size_t cb = st.color_bytes[static_cast<std::size_t>(c)];
    const int nchunks = cb == 0 ? 0 : static_cast<int>((cb + st.chunk - 1) / st.chunk);
    for (int k = 0; k < nchunks; ++k) {
      st.send_chunk(0, c, k,
                    st.payload.data() + st.color_off[static_cast<std::size_t>(c)] +
                        static_cast<std::size_t>(k) * st.chunk);
    }
  }
  w.run();
  if (n > 1 && st.done_nodes != n - 1) fail("scenario: broadcast did not complete");
  if (payload_out != nullptr) {
    (*payload_out)[0] = st.payload;  // root's copy, for uniform verification
  }

  BcastStats out;
  out.colors = colors;
  out.total_us = st.t_end - t0;
  out.bandwidth_mb_s = out.total_us > 0.0 ? static_cast<double>(bytes) / out.total_us : 0.0;
  out.max_link_occupancy = w.net_pvars()[obs::Pvar::SimLinkMaxOccupancy];
  out.chunk_bytes = st.chunk;
  out.chunks = st.chunks;
  return out;
}

// ---- Adversarial traffic ---------------------------------------------------

namespace {

struct SinkState {
  ScenarioWorld* w = nullptr;
  std::uint64_t expected = 0;
  std::uint64_t got = 0;
  double t_end = 0.0;
};

void register_sink(ScenarioWorld& w, SinkState* s, int node) {
  w.ctx(node).set_dispatch(
      kDisSink, [s](pami::Context&, const void*, std::size_t, const void* pipe,
                    std::size_t pipe_bytes, std::size_t total, pami::Endpoint,
                    pami::RecvDescriptor*) {
        if (pipe == nullptr || pipe_bytes != total) fail("scenario: sink expects single packets");
        s->got += total;
        if (s->got == s->expected) s->t_end = s->w->now_us();
      });
}

/// Stream `bytes` from `src` to `dst` as single-packet messages.
void stream_small(ScenarioWorld& w, int src, int dst, std::size_t bytes,
                  const std::byte* scratch) {
  while (bytes > 0) {
    const std::size_t l = std::min(bytes, kSmallMsgBytes);
    pami::SendParams p;
    p.dispatch = kDisSink;
    p.dest = pami::Endpoint{dst, 0};
    p.data = scratch;
    p.data_bytes = l;
    send_from(w, src, p);
    bytes -= l;
  }
}

TrafficStats traffic_stats(ScenarioWorld& w, const obs::PvarSnapshot& before, double t0,
                           double t_end, std::uint64_t payload) {
  TrafficStats out;
  out.total_us = t_end - t0;
  out.aggregate_mb_s =
      out.total_us > 0.0 ? static_cast<double>(payload) / out.total_us : 0.0;
  const obs::PvarSnapshot now = w.net_pvars();
  out.max_link_occupancy = now[obs::Pvar::SimLinkMaxOccupancy];
  out.deliver_retries = (now - before)[obs::Pvar::SimDeliverRetries];
  return out;
}

}  // namespace

TrafficStats scenario_hotspot(ScenarioWorld& w, std::size_t bytes_per_node) {
  const int n = w.nodes();
  SinkState st;
  st.w = &w;
  st.expected = static_cast<std::uint64_t>(n - 1) * bytes_per_node;
  register_sink(w, &st, 0);

  std::vector<std::byte> scratch(kSmallMsgBytes, std::byte{0x5a});
  const obs::PvarSnapshot before = w.net_pvars();
  const double t0 = w.now_us();
  for (int src = 1; src < n; ++src) stream_small(w, src, 0, bytes_per_node, scratch.data());
  w.run();
  if (st.got != st.expected) fail("scenario: hotspot lost traffic");
  return traffic_stats(w, before, t0, st.t_end, st.expected);
}

TrafficStats scenario_all_to_all(ScenarioWorld& w, std::size_t bytes_per_peer, int rounds) {
  const int n = w.nodes();
  if (n < 2) return {};
  SinkState st;
  st.w = &w;
  for (int i = 0; i < n; ++i) register_sink(w, &st, i);

  std::vector<std::byte> scratch(kSmallMsgBytes, std::byte{0xa5});
  const obs::PvarSnapshot before = w.net_pvars();
  const double t0 = w.now_us();
  std::uint64_t payload = 0;
  for (int r = 0; r < rounds; ++r) {
    // A seeded shift permutation per round: everyone sends, everyone
    // receives, and each round completes before the next (incast pressure
    // within a round, fresh pattern across rounds).
    const int shift =
        1 + static_cast<int>(splitmix64(w.machine().options().sim_seed.value_or(0) +
                                        static_cast<std::uint64_t>(r)) %
                             static_cast<std::uint64_t>(n - 1));
    st.expected += static_cast<std::uint64_t>(n) * bytes_per_peer;
    payload += static_cast<std::uint64_t>(n) * bytes_per_peer;
    for (int src = 0; src < n; ++src) {
      stream_small(w, src, (src + shift) % n, bytes_per_peer, scratch.data());
    }
    w.run();
    if (st.got != st.expected) fail("scenario: all-to-all lost traffic");
  }
  return traffic_stats(w, before, t0, st.t_end, payload);
}

// ---- Classroute churn ------------------------------------------------------

ChurnStats scenario_classroute_churn(ScenarioWorld& w, int count) {
  const hw::TorusGeometry& g = w.machine().geometry();
  pami::GeometryRegistry& reg = w.world().geometries();
  ChurnStats out;
  double ping_sum = 0.0;
  int pings = 0;

  // Slice planes/slabs off the longest dimension: every rectangle is
  // axial-eligible and the keys are distinct, so each optimize() call
  // competes for one of the 14 user classroute slots.
  int slice_dim = 0;
  for (int d = 1; d < hw::kTorusDims; ++d) {
    if (g.dims()[static_cast<std::size_t>(d)] > g.dims()[static_cast<std::size_t>(slice_dim)]) {
      slice_dim = d;
    }
  }
  const int extent = g.dims()[static_cast<std::size_t>(slice_dim)];

  for (int k = 0; k < count; ++k) {
    hw::TorusRectangle rect = hw::TorusRectangle::whole_machine(g);
    const int lo = extent > 1 ? k % extent : 0;
    const int hi = std::min(extent - 1, lo + (k / std::max(1, extent)) % 2);
    rect.lo[static_cast<std::size_t>(slice_dim)] = lo;
    rect.hi[static_cast<std::size_t>(slice_dim)] = std::max(lo, hi);

    auto geo = reg.get_or_create(0xC0FFEE00ULL + static_cast<std::uint64_t>(k),
                                 pami::Topology::axial(g, rect, w.machine().ppn()));
    ++out.geometries;
    const int before = reg.routes_in_use();
    if (reg.optimize(*geo)) {
      ++out.optimized;
      // A successful optimize that did not grow the in-use count recycled
      // an LRU victim's slot.
      if (reg.routes_in_use() == before) ++out.evictions;
    }

    if (k % 4 == 3) {
      // Interleave real point-to-point traffic across the churn: the data
      // path must not care that classroutes are being reprogrammed.
      const int src = g.node_of(rect.lo);
      const int dst = g.node_of(rect.hi);
      if (src != dst) {
        ping_sum += scenario_one_way_us(w, src, dst, 512);
        ++pings;
      }
    }
  }
  out.routes_in_use = reg.routes_in_use();
  out.ping_us_mean = pings > 0 ? ping_sum / pings : 0.0;
  return out;
}

// ---- One-way latency -------------------------------------------------------

double scenario_one_way_us(ScenarioWorld& w, int src, int dst, std::size_t bytes) {
  struct PingState {
    ScenarioWorld* w = nullptr;
    std::vector<std::byte> land;
    double t_end = -1.0;
  };
  PingState st;
  st.w = &w;
  st.land.resize(std::max<std::size_t>(bytes, 1));
  PingState* s = &st;
  w.ctx(dst).set_dispatch(
      kDisPing, [s](pami::Context&, const void*, std::size_t, const void* pipe,
                    std::size_t pipe_bytes, std::size_t total, pami::Endpoint,
                    pami::RecvDescriptor* recv) {
        if (recv == nullptr) {
          if (pipe_bytes != total) fail("scenario: truncated ping");
          s->t_end = s->w->now_us();
          return;
        }
        recv->buffer = s->land.data();
        recv->bytes = total;
        recv->on_complete = [s] { s->t_end = s->w->now_us(); };
        (void)pipe;
      });

  std::vector<std::byte> payload(std::max<std::size_t>(bytes, 1), std::byte{0x42});
  const double t0 = w.now_us();
  pami::SendParams p;
  p.dispatch = kDisPing;
  p.dest = pami::Endpoint{dst, 0};
  p.data = payload.data();
  p.data_bytes = bytes;
  send_from(w, src, p);
  w.run();
  if (st.t_end < 0.0) fail("scenario: ping never landed");
  return st.t_end - t0;
}

}  // namespace pamix::sim
