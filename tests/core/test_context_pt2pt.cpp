#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "core/client.h"
#include "core/context.h"
#include "runtime/machine.h"

namespace pamix::pami {
namespace {

std::vector<std::byte> pattern(std::size_t n, int salt = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i * 13 + salt);
  return v;
}

/// Two-node fixture: task 0 on node 0, task 1 on node 1 (inter-node MU
/// path); single-threaded progress by explicit advance.
class ContextPt2Pt : public ::testing::Test {
 protected:
  ContextPt2Pt()
      : machine_(hw::TorusGeometry({2, 1, 1, 1, 1}), 1),
        world_(machine_, make_config()) {}

  static ClientConfig make_config() {
    ClientConfig c;
    c.contexts_per_task = 1;
    c.eager_limit = 1024;
    return c;
  }

  Context& ctx(int task) { return world_.client(task).context(0); }
  void advance_both() {
    ctx(0).advance();
    ctx(1).advance();
  }

  runtime::Machine machine_;
  ClientWorld world_;
};

TEST_F(ContextPt2Pt, SendImmediateDeliversHeaderAndPayload) {
  std::vector<std::byte> got;
  std::uint32_t got_header = 0;
  Endpoint got_origin{};
  ctx(1).set_dispatch(7, [&](Context&, const void* h, std::size_t hb, const void* pipe,
                             std::size_t pb, std::size_t total, Endpoint origin,
                             RecvDescriptor* recv) {
    ASSERT_EQ(hb, sizeof(std::uint32_t));
    std::memcpy(&got_header, h, hb);
    ASSERT_EQ(recv, nullptr);  // short message: immediate delivery
    ASSERT_EQ(pb, total);
    got.assign(static_cast<const std::byte*>(pipe), static_cast<const std::byte*>(pipe) + pb);
    got_origin = origin;
  });

  const std::uint32_t header = 0xABCD1234;
  const auto payload = pattern(48);
  ASSERT_EQ(ctx(0).send_immediate(7, Endpoint{1, 0}, &header, sizeof(header), payload.data(),
                                  payload.size()),
            Result::Success);
  for (int i = 0; i < 100 && got.empty(); ++i) advance_both();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(got_header, 0xABCD1234u);
  EXPECT_EQ(got_origin, (Endpoint{0, 0}));
}

TEST_F(ContextPt2Pt, SendImmediateRejectsOversize) {
  std::vector<std::byte> big(4096);
  EXPECT_EQ(ctx(0).send_immediate(7, Endpoint{1, 0}, nullptr, 0, big.data(), big.size()),
            Result::Invalid);
}

TEST_F(ContextPt2Pt, EagerMultiPacketMessageReassembles) {
  const auto payload = pattern(900);  // > 512: two packets, still eager
  std::vector<std::byte> recv_buf(payload.size());
  bool complete = false;
  ctx(1).set_dispatch(3, [&](Context&, const void*, std::size_t, const void* pipe,
                             std::size_t, std::size_t total, Endpoint, RecvDescriptor* recv) {
    ASSERT_EQ(pipe, nullptr);  // multi-packet: asynchronous receive
    ASSERT_NE(recv, nullptr);
    ASSERT_EQ(total, payload.size());
    recv->buffer = recv_buf.data();
    recv->bytes = recv_buf.size();
    recv->on_complete = [&] { complete = true; };
  });

  SendParams p;
  p.dispatch = 3;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  bool local_done = false;
  p.on_local_done = [&] { local_done = true; };
  ASSERT_EQ(ctx(0).send(p), Result::Success);
  EXPECT_TRUE(local_done);  // eager: buffer reusable immediately
  for (int i = 0; i < 200 && !complete; ++i) advance_both();
  ASSERT_TRUE(complete);
  EXPECT_EQ(recv_buf, payload);
}

TEST_F(ContextPt2Pt, RendezvousTransfersLargePayloadZeroCopy) {
  const auto payload = pattern(64 * 1024);  // >> eager_limit: rendezvous
  std::vector<std::byte> recv_buf(payload.size());
  bool remote_done = false, local_done = false, recv_complete = false;
  ctx(1).set_dispatch(4, [&](Context&, const void*, std::size_t, const void* pipe,
                             std::size_t, std::size_t total, Endpoint, RecvDescriptor* recv) {
    ASSERT_EQ(pipe, nullptr);
    ASSERT_EQ(total, payload.size());
    recv->buffer = recv_buf.data();
    recv->bytes = recv_buf.size();
    recv->on_complete = [&] { recv_complete = true; };
  });

  SendParams p;
  p.dispatch = 4;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  p.on_local_done = [&] { local_done = true; };
  p.on_remote_done = [&] { remote_done = true; };
  ASSERT_EQ(ctx(0).send(p), Result::Success);
  EXPECT_FALSE(local_done);  // rendezvous: buffer pinned until DONE
  for (int i = 0; i < 500 && !remote_done; ++i) advance_both();
  EXPECT_TRUE(recv_complete);
  EXPECT_TRUE(local_done);
  EXPECT_TRUE(remote_done);
  EXPECT_EQ(recv_buf, payload);
}

TEST_F(ContextPt2Pt, RendezvousTruncatesToReceiverWindow) {
  const auto payload = pattern(8000);
  std::vector<std::byte> recv_buf(1000);
  bool remote_done = false;
  ctx(1).set_dispatch(4, [&](Context&, const void*, std::size_t, const void*, std::size_t,
                             std::size_t, Endpoint, RecvDescriptor* recv) {
    recv->buffer = recv_buf.data();
    recv->bytes = recv_buf.size();
  });
  SendParams p;
  p.dispatch = 4;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  p.on_remote_done = [&] { remote_done = true; };
  ASSERT_EQ(ctx(0).send(p), Result::Success);
  for (int i = 0; i < 500 && !remote_done; ++i) advance_both();
  ASSERT_TRUE(remote_done);
  EXPECT_TRUE(std::equal(recv_buf.begin(), recv_buf.end(), payload.begin()));
}

TEST_F(ContextPt2Pt, EagerWithRemoteCompletionAck) {
  const auto payload = pattern(256);
  bool remote_done = false;
  std::vector<std::byte> got;
  ctx(1).set_dispatch(9, [&](Context&, const void*, std::size_t, const void* pipe,
                             std::size_t pb, std::size_t, Endpoint, RecvDescriptor*) {
    got.assign(static_cast<const std::byte*>(pipe), static_cast<const std::byte*>(pipe) + pb);
  });
  SendParams p;
  p.dispatch = 9;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  p.on_remote_done = [&] { remote_done = true; };
  ASSERT_EQ(ctx(0).send(p), Result::Success);
  for (int i = 0; i < 200 && !remote_done; ++i) advance_both();
  EXPECT_TRUE(remote_done);
  EXPECT_EQ(got, payload);
}

TEST_F(ContextPt2Pt, ManyMessagesArriveInOrderPerPair) {
  constexpr int kCount = 200;
  std::vector<int> received;
  ctx(1).set_dispatch(2, [&](Context&, const void* h, std::size_t, const void*, std::size_t,
                             std::size_t, Endpoint, RecvDescriptor*) {
    int idx;
    std::memcpy(&idx, h, sizeof(idx));
    received.push_back(idx);
  });
  for (int i = 0; i < kCount; ++i) {
    while (ctx(0).send_immediate(2, Endpoint{1, 0}, &i, sizeof(i), nullptr, 0) !=
           Result::Success) {
      advance_both();
    }
  }
  for (int i = 0; i < 1000 && static_cast<int>(received.size()) < kCount; ++i) advance_both();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST_F(ContextPt2Pt, PostRunsOnAdvance) {
  bool ran = false;
  ctx(0).post([&] { ran = true; });
  EXPECT_FALSE(ran);
  ctx(0).advance();
  EXPECT_TRUE(ran);
}

TEST_F(ContextPt2Pt, ContextLockSemantics) {
  Context& c = ctx(0);
  EXPECT_TRUE(c.trylock());
  EXPECT_FALSE(c.trylock());
  c.unlock();
  c.lock();
  c.unlock();
}

TEST_F(ContextPt2Pt, ZeroByteMessageDispatches) {
  int calls = 0;
  ctx(1).set_dispatch(5, [&](Context&, const void*, std::size_t hb, const void*, std::size_t pb,
                             std::size_t total, Endpoint, RecvDescriptor*) {
    EXPECT_EQ(hb, 0u);
    EXPECT_EQ(pb, 0u);
    EXPECT_EQ(total, 0u);
    ++calls;
  });
  ASSERT_EQ(ctx(0).send_immediate(5, Endpoint{1, 0}, nullptr, 0, nullptr, 0), Result::Success);
  for (int i = 0; i < 100 && calls == 0; ++i) advance_both();
  EXPECT_EQ(calls, 1);
}

// Property sweep: every message size crosses the packetization and
// protocol boundaries intact (0, 1, granule edges, packet edges, eager
// limit edges, multi-packet rendezvous).
class SizeSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  SizeSweep()
      : machine_(hw::TorusGeometry({2, 1, 1, 1, 1}), 1), world_(machine_, make_config()) {}
  static ClientConfig make_config() {
    ClientConfig c;
    c.eager_limit = 1024;
    return c;
  }
  runtime::Machine machine_;
  ClientWorld world_;
};

TEST_P(SizeSweep, PayloadIntactAcrossProtocols) {
  const std::size_t bytes = GetParam();
  Context& src = world_.client(0).context(0);
  Context& dst = world_.client(1).context(0);
  const auto payload = pattern(std::max<std::size_t>(bytes, 1));
  std::vector<std::byte> got(bytes);
  bool done = false;
  dst.set_dispatch(1, [&](Context&, const void*, std::size_t, const void* pipe,
                          std::size_t pipe_bytes, std::size_t total, Endpoint,
                          RecvDescriptor* recv) {
    ASSERT_EQ(total, bytes);
    if (recv == nullptr) {
      if (pipe_bytes > 0) std::memcpy(got.data(), pipe, pipe_bytes);
      done = true;
      return;
    }
    recv->buffer = got.data();
    recv->bytes = got.size();
    recv->on_complete = [&] { done = true; };
  });
  SendParams p;
  p.dispatch = 1;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = bytes;
  bool remote = false;
  p.on_remote_done = [&] { remote = true; };
  while (src.send(p) == Result::Eagain) {
    src.advance();
    dst.advance();
  }
  for (int i = 0; i < 5000 && !(done && remote); ++i) {
    src.advance();
    dst.advance();
  }
  ASSERT_TRUE(done);
  ASSERT_TRUE(remote);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(0u, 1u, 31u, 32u, 33u, 511u, 512u, 513u, 1023u,
                                           1024u, 1025u, 4096u, 65536u, 1048577u));

}  // namespace
}  // namespace pamix::pami
