#include "runtime/machine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace pamix::runtime {
namespace {

TEST(Machine, TaskMappingIsAbcdeT) {
  Machine m(hw::TorusGeometry({2, 2, 1, 1, 1}), /*ppn=*/4);
  EXPECT_EQ(m.node_count(), 4);
  EXPECT_EQ(m.task_count(), 16);
  EXPECT_EQ(m.node_of_task(0), 0);
  EXPECT_EQ(m.node_of_task(3), 0);
  EXPECT_EQ(m.node_of_task(4), 1);
  EXPECT_EQ(m.local_index_of_task(6), 2);
  EXPECT_EQ(m.task_of(3, 1), 13);
}

TEST(Machine, WorldClassrouteProgrammedAtBoot) {
  Machine m(hw::TorusGeometry({2, 2, 2, 1, 1}), 1);
  ASSERT_TRUE(m.classroute_programmed(0));
  EXPECT_EQ(m.classroute(0).participant_count(), 8);
  EXPECT_EQ(m.collective_engine(0).participants(), 8);
  EXPECT_EQ(m.gi_network().barrier(0)->participants(), 8);
}

TEST(Machine, ProgramAndClearClassrouteSlots) {
  Machine m(hw::TorusGeometry({2, 2, 1, 1, 1}), 1);
  hw::TorusRectangle line;
  line.lo = {0, 0, 0, 0, 0};
  line.hi = {1, 0, 0, 0, 0};
  m.program_classroute(5, line);
  EXPECT_TRUE(m.classroute_programmed(5));
  EXPECT_EQ(m.classroute(5).participant_count(), 2);
  m.clear_classroute(5);
  EXPECT_FALSE(m.classroute_programmed(5));
}

TEST(Machine, RunSpmdRunsEveryTaskOnItsOwnThread) {
  Machine m(hw::TorusGeometry({2, 1, 1, 1, 1}), 3);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(m.task_count()));
  m.run_spmd([&](int task) { hits[static_cast<std::size_t>(task)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Machine, RunSpmdPropagatesExceptions) {
  Machine m(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  EXPECT_THROW(
      m.run_spmd([](int task) {
        if (task == 1) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(FunctionalNetwork, TransmitsBetweenNodesAndCounts) {
  Machine m(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  hw::MuDescriptor d;
  d.type = hw::MuPacketType::MemoryFifo;
  d.dest_node = 1;
  d.rec_fifo = 0;
  std::vector<std::byte> payload(600, std::byte{0x5A});
  d.payload = payload.data();
  d.payload_bytes = payload.size();
  ASSERT_TRUE(m.node(0).mu().inj_fifo(0).push(std::move(d)));
  m.node(0).mu().advance_injection({0});
  EXPECT_EQ(m.network().packets_delivered(), 2u);  // 512 + 88
  EXPECT_EQ(m.network().payload_bytes_delivered(), 600u);
  hw::MuPacket pkt;
  EXPECT_TRUE(m.node(1).mu().rec_fifo(0).poll(pkt));
}

TEST(FunctionalNetwork, DepositBitDeliversAlongTheLine) {
  // The hardware line broadcast: one memory-FIFO packet sent down an axis
  // with the deposit bit lands at every node it passes through.
  Machine m(hw::TorusGeometry({4, 1, 1, 1, 1}), 1);
  hw::MuDescriptor d;
  d.type = hw::MuPacketType::MemoryFifo;
  d.deposit = true;
  d.dest_node = 2;  // A+ line through nodes 1 and 2 (3 would wrap A-)
  d.rec_fifo = 0;
  std::vector<std::byte> payload(64, std::byte{0x7E});
  d.payload = payload.data();
  d.payload_bytes = payload.size();
  ASSERT_TRUE(m.node(0).mu().inj_fifo(0).push(std::move(d)));
  m.node(0).mu().advance_injection({0});
  for (int node : {1, 2}) {
    hw::MuPacket pkt;
    ASSERT_TRUE(m.node(node).mu().rec_fifo(0).poll(pkt)) << "node " << node;
    EXPECT_EQ(pkt.payload.size(), 64u);
    EXPECT_EQ(pkt.payload[0], std::byte{0x7E});
    EXPECT_TRUE(pkt.deposit);
  }
  // The source itself does not receive its own deposit.
  hw::MuPacket none;
  EXPECT_FALSE(m.node(0).mu().rec_fifo(0).poll(none));
}

}  // namespace
}  // namespace pamix::runtime
