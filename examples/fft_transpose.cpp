// FFT transpose — the all-to-all communication pattern the paper's
// introduction motivates ("the 5D torus boosts the bisection bandwidth of
// the machine accelerating the performance of applications that have
// all-to-all communication such as FFT").
//
// A distributed 2D FFT is two batches of 1D FFTs separated by a global
// matrix transpose; the transpose IS an MPI_Alltoall. This example runs a
// real distributed complex 2D DFT over the functional machine — local
// naive DFTs plus the alltoall-based transpose (using the extension
// collective from the paper's future-work list) — and verifies it against
// a serial 2D DFT.
//
// Run:  ./fft_transpose
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "mpi/mpi.h"

using namespace pamix;
using cplx = std::complex<double>;

namespace {

constexpr int kRanks = 8;
constexpr int kN = 64;               // kN x kN global grid
constexpr int kRows = kN / kRanks;   // rows per rank

/// Naive 1D DFT (O(n^2)) — the example is about the communication.
void dft_row(cplx* row, int n) {
  std::vector<cplx> out(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    cplx acc = 0;
    for (int j = 0; j < n; ++j) {
      const double ang = -2.0 * M_PI * k * j / n;
      acc += row[j] * cplx(std::cos(ang), std::sin(ang));
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
  for (int j = 0; j < n; ++j) row[j] = out[static_cast<std::size_t>(j)];
}

cplx input_at(int r, int c) {
  return cplx(std::sin(0.1 * r) + 0.3 * std::cos(0.25 * c), 0.05 * r * c / (kN * kN));
}

std::vector<cplx> serial_fft2d() {
  std::vector<cplx> g(kN * kN);
  for (int r = 0; r < kN; ++r) {
    for (int c = 0; c < kN; ++c) g[r * kN + c] = input_at(r, c);
  }
  for (int r = 0; r < kN; ++r) dft_row(&g[r * kN], kN);
  // Transpose, row DFTs, transpose back.
  std::vector<cplx> t(kN * kN);
  for (int r = 0; r < kN; ++r) {
    for (int c = 0; c < kN; ++c) t[c * kN + r] = g[r * kN + c];
  }
  for (int r = 0; r < kN; ++r) dft_row(&t[r * kN], kN);
  for (int r = 0; r < kN; ++r) {
    for (int c = 0; c < kN; ++c) g[c * kN + r] = t[r * kN + c];
  }
  return g;
}

}  // namespace

int main() {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 2, 1, 1}), /*ppn=*/1);
  mpi::MpiWorld world(machine, mpi::MpiConfig{});
  std::printf("distributed 2D DFT, %dx%d grid over %d ranks (row-sliced)\n", kN, kN, kRanks);

  const std::vector<cplx> reference = serial_fft2d();

  machine.run_spmd([&](int task) {
    mpi::Mpi& mp = world.at(task);
    mp.init(mpi::ThreadLevel::Single);
    const mpi::Comm w = mp.world();
    const int me = mp.rank(w);

    // My row slab.
    std::vector<cplx> slab(kRows * kN);
    for (int r = 0; r < kRows; ++r) {
      for (int c = 0; c < kN; ++c) slab[r * kN + c] = input_at(me * kRows + r, c);
    }

    // Pass 1: DFT my rows.
    for (int r = 0; r < kRows; ++r) dft_row(&slab[r * kN], kN);

    // Global transpose via alltoall: block (me -> peer) carries my rows'
    // columns owned by peer after the transpose.
    const std::size_t block_elems = static_cast<std::size_t>(kRows) * kRows;
    auto pack = [&](std::vector<cplx>& sendbuf) {
      for (int peer = 0; peer < kRanks; ++peer) {
        for (int r = 0; r < kRows; ++r) {
          for (int c = 0; c < kRows; ++c) {
            sendbuf[peer * block_elems + static_cast<std::size_t>(c) * kRows + r] =
                slab[r * kN + peer * kRows + c];
          }
        }
      }
    };
    auto unpack = [&](const std::vector<cplx>& recvbuf) {
      for (int peer = 0; peer < kRanks; ++peer) {
        for (int r = 0; r < kRows; ++r) {
          for (int c = 0; c < kRows; ++c) {
            slab[r * kN + peer * kRows + c] =
                recvbuf[peer * block_elems + static_cast<std::size_t>(r) * kRows + c];
          }
        }
      }
    };
    std::vector<cplx> sendbuf(block_elems * kRanks), recvbuf(block_elems * kRanks);
    pack(sendbuf);
    mp.alltoall(sendbuf.data(), recvbuf.data(), block_elems * sizeof(cplx), w);
    unpack(recvbuf);

    // Pass 2: DFT the (now transposed) rows.
    for (int r = 0; r < kRows; ++r) dft_row(&slab[r * kN], kN);

    // Transpose back so every rank holds its original rows of the result.
    pack(sendbuf);
    mp.alltoall(sendbuf.data(), recvbuf.data(), block_elems * sizeof(cplx), w);
    unpack(recvbuf);

    // Verify against the serial result.
    double max_err = 0;
    for (int r = 0; r < kRows; ++r) {
      for (int c = 0; c < kN; ++c) {
        max_err = std::max(max_err,
                           std::abs(slab[r * kN + c] - reference[(me * kRows + r) * kN + c]));
      }
    }
    double global_err = 0;
    mp.allreduce(&max_err, &global_err, 1, mpi::Type::Double, mpi::Op::Max, w);
    if (me == 0) {
      std::printf("max |parallel - serial| = %.3e  ->  %s\n", global_err,
                  global_err < 1e-6 ? "VERIFIED" : "MISMATCH");
    }
    mp.finalize();
  });
  return 0;
}
