// Functional multicolor rectangle broadcast: real slices relayed down the
// real constructed trees over the PAMI point-to-point stack.
#include <gtest/gtest.h>

#include <numeric>

#include "core/client.h"
#include "core/collectives.h"
#include "obs/pvar.h"
#include "runtime/machine.h"

namespace pamix::pami {
namespace {

class RectBcastFunctional : public ::testing::TestWithParam<std::pair<std::array<int, 5>, int>> {
};

TEST_P(RectBcastFunctional, DeliversEverywhere) {
  const auto [dims, ppn] = GetParam();
  runtime::Machine machine(hw::TorusGeometry(dims), ppn);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().world_geometry();
  const std::size_t bytes = 40000;  // not divisible by 10: uneven slices

  machine.run_spmd([&](int task) {
    Context& ctx = world.client(task).context(0);
    std::vector<std::uint8_t> buf(bytes, 0);
    if (*geom->rank_of(task) == 0) {
      for (std::size_t i = 0; i < bytes; ++i) buf[i] = static_cast<std::uint8_t>(i * 7 + 3);
    }
    coll::rectangle_broadcast(ctx, *geom, 0, buf.data(), bytes);
    for (std::size_t i = 0; i < bytes; i += 997) {
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 7 + 3)) << "task " << task;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RectBcastFunctional,
    ::testing::Values(std::make_pair(std::array<int, 5>{2, 2, 1, 1, 1}, 1),
                      std::make_pair(std::array<int, 5>{2, 2, 1, 1, 1}, 2),
                      std::make_pair(std::array<int, 5>{3, 3, 1, 1, 1}, 1),
                      std::make_pair(std::array<int, 5>{2, 2, 2, 1, 1}, 1),
                      std::make_pair(std::array<int, 5>{1, 1, 1, 1, 1}, 4)),
    [](const auto& info) {
      std::string s = "t";
      for (int d : info.param.first) s += std::to_string(d);
      return s + "_ppn" + std::to_string(info.param.second);
    });

TEST(RectBcastFunctionalRoots, NonZeroAndNonMasterRoots) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), 2);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().world_geometry();
  const std::size_t bytes = 8192;
  // Root 5 = node 2, local index 1: NOT its node's master.
  for (std::size_t root : {std::size_t{5}, std::size_t{3}}) {
    machine.run_spmd([&](int task) {
      Context& ctx = world.client(task).context(0);
      std::vector<std::uint32_t> buf(bytes / 4, 0);
      if (*geom->rank_of(task) == root) {
        std::iota(buf.begin(), buf.end(), static_cast<std::uint32_t>(root) * 1000);
      }
      coll::rectangle_broadcast(ctx, *geom, root, buf.data(), bytes);
      ASSERT_EQ(buf.front(), root * 1000);
      ASSERT_EQ(buf.back(), root * 1000 + bytes / 4 - 1);
    });
  }
}

TEST(RectBcastFunctionalSmall, TinyAndEmptyMessages) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), 1);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().world_geometry();
  machine.run_spmd([&](int task) {
    Context& ctx = world.client(task).context(0);
    // Fewer bytes than colors: most slices are empty.
    std::array<std::uint8_t, 3> small{};
    if (*geom->rank_of(task) == 0) small = {9, 8, 7};
    coll::rectangle_broadcast(ctx, *geom, 0, small.data(), small.size());
    EXPECT_EQ(small[0], 9);
    EXPECT_EQ(small[2], 7);
    // Zero bytes: pure synchronization.
    coll::rectangle_broadcast(ctx, *geom, 0, small.data(), 0);
  });
}

TEST(RectBcastFunctionalIrregular, FallsBackForNonRectangles) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), 1);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().get_or_create(5, Topology::list({0, 1, 3}));
  const std::uint64_t fallbacks_before =
      obs::Registry::instance().totals()[obs::Pvar::CollRectFallbacks];
  machine.run_spmd([&](int task) {
    if (!geom->rank_of(task).has_value()) return;
    Context& ctx = world.client(task).context(0);
    int v = *geom->rank_of(task) == 0 ? 77 : 0;
    coll::rectangle_broadcast(ctx, *geom, 0, &v, sizeof(v));
    EXPECT_EQ(v, 77);
  });
  // The silent downgrade to the radix-tree broadcast must be observable:
  // every participating task counts one fallback.
  EXPECT_EQ(obs::Registry::instance().totals()[obs::Pvar::CollRectFallbacks] -
                fallbacks_before,
            3u);
}

/// RAII chunk-size override for the sweep tests below (the tuning knob is
/// process-global, so tests must restore it for their neighbors).
class ScopedRectChunk {
 public:
  explicit ScopedRectChunk(std::size_t chunk) : saved_(coll::tuning().rect_chunk) {
    coll::tuning().rect_chunk = chunk;
  }
  ~ScopedRectChunk() { coll::tuning().rect_chunk = saved_; }

 private:
  std::size_t saved_;
};

/// The streaming relay must deliver for any chunk size: one byte
/// (degenerate maximum chunk count), odd sizes that never divide the
/// slice, the default, and a chunk far larger than any color slice
/// (degenerates to store-and-forward scheduling, single chunk per color).
/// The all-extent-2 torus also exercises per-chunk hint bits on rings
/// where +dir and -dir reach the same neighbor.
TEST(RectBcastChunked, DeliversAtEveryChunkSize) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 2, 1, 1}), 1);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().world_geometry();
  const std::size_t bytes = 40001;  // prime-ish: never a multiple of chunk*colors
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{97}, std::size_t{1024},
                                  std::size_t{1} << 20}) {
    ScopedRectChunk scoped(chunk);
    machine.run_spmd([&](int task) {
      Context& ctx = world.client(task).context(0);
      std::vector<std::uint8_t> buf(bytes, 0);
      if (*geom->rank_of(task) == 0) {
        for (std::size_t i = 0; i < bytes; ++i) buf[i] = static_cast<std::uint8_t>(i * 13 + 5);
      }
      coll::rectangle_broadcast(ctx, *geom, 0, buf.data(), bytes);
      for (std::size_t i = 0; i < bytes; i += 499) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 13 + 5))
            << "task " << task << " chunk " << chunk;
      }
      ASSERT_EQ(buf[bytes - 1], static_cast<std::uint8_t>((bytes - 1) * 13 + 5));
    });
  }
}

/// A 2-node line has the minimum color count; the payload is smaller than
/// one chunk, so every color is a single short chunk (and some colors may
/// be empty slices).
TEST(RectBcastChunked, SingleChunkAndFewColors) {
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().world_geometry();
  ScopedRectChunk scoped(1024);
  machine.run_spmd([&](int task) {
    Context& ctx = world.client(task).context(0);
    std::array<std::uint8_t, 100> buf{};
    if (*geom->rank_of(task) == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::uint8_t>(i + 1);
    }
    coll::rectangle_broadcast(ctx, *geom, 0, buf.data(), buf.size());
    EXPECT_EQ(buf[0], 1);
    EXPECT_EQ(buf[99], 100);
  });
}

/// Back-to-back streamed broadcasts with different payloads: per-chunk
/// sequence matching must never cross-deliver between operations even
/// when a fast task starts operation i+1 while a slow one finishes i.
TEST(RectBcastChunked, BackToBackOperationsDoNotCrossDeliver) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 2, 1, 1}), 1);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().world_geometry();
  ScopedRectChunk scoped(256);
  const std::size_t bytes = 12000;
  machine.run_spmd([&](int task) {
    Context& ctx = world.client(task).context(0);
    std::vector<std::uint8_t> buf(bytes);
    for (int iter = 0; iter < 8; ++iter) {
      if (*geom->rank_of(task) == 0) {
        for (std::size_t i = 0; i < bytes; ++i) {
          buf[i] = static_cast<std::uint8_t>(i * 3 + iter * 41 + 1);
        }
      } else {
        std::fill(buf.begin(), buf.end(), 0);
      }
      coll::rectangle_broadcast(ctx, *geom, 0, buf.data(), bytes);
      for (std::size_t i = 0; i < bytes; i += 251) {
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 3 + iter * 41 + 1))
            << "task " << task << " iter " << iter;
      }
    }
  });
}

}  // namespace
}  // namespace pamix::pami
