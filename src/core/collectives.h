// Collectives — PAMI's geometry collectives (paper §III-D, §IV-B/C).
//
// Two paths, chosen by whether the geometry holds a classroute:
//
//  * Optimized (collective network): barrier = node-local L2-atomic
//    barrier + global-interrupt round; broadcast/(all)reduce = RDMA
//    combine/broadcast on the embedded collective network, with the
//    shared-address node protocols of Figures 3 and 4 — peers publish
//    their buffers, local math is parallelized across the node's
//    processes, only the node master talks to the network, and peers copy
//    results straight out of the master's buffer through the CNK global
//    VA. Long reductions pipeline in slices.
//
//  * Software (irregular geometries, or after deoptimize): dissemination
//    barrier, binomial broadcast/reduce, pairwise all-to-all — built on
//    PAMI active-message sends, so they exercise the same pt2pt stack.
//
// All calls are blocking and advance the caller's context while waiting;
// software-path calls must run on context 0 (where the collective dispatch
// is registered).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/context.h"
#include "core/geometry.h"
#include "hw/classroute.h"

namespace pamix::pami::coll {

/// Default pipeline slice for long reductions (Figure 4).
inline constexpr std::size_t kPipelineSliceBytes = 64 * 1024;

/// Default rectangle-broadcast relay chunk (cut-through streaming). Tuned
/// by the DES chunk sweep (bench/ablate_rect_chunk): 1K keeps the deep
/// color trees' pipelines full — fill latency stops dominating — while
/// staying well inside the buffer-pool size classes, so relays are
/// allocation-free in steady state.
inline constexpr std::size_t kRectChunkBytes = 1024;

/// In-flight bound of the chunked rectangle relay: a master may run at
/// most this many chunks of one color ahead of a child's acknowledgment.
/// The stand-in for finite reception FIFOs — without it a fast parent
/// would pile unbounded pooled deposits onto a slow subtree.
inline constexpr std::uint32_t kRectWindowChunks = 8;

/// Children acknowledge every kRectAckChunks-th chunk (and always the
/// last), so ack traffic is a fraction of data traffic. Must divide into
/// the window: kRectWindowChunks >= 2 * kRectAckChunks keeps the pipe full
/// while an ack is in flight.
inline constexpr std::uint32_t kRectAckChunks = 4;

/// Dispatch id reserved for the software-collective engine.
inline constexpr DispatchId kCollDispatchId = 0xF01;

/// Runtime-tunable collective parameters. Initialized once per process
/// from the environment (PAMIX_COLL_SLICE, PAMIX_COLL_RADIX,
/// PAMIX_COLL_OVERLAP) with warn-and-keep validation, then freely mutable:
/// benches A/B the overlap pipeline and tests sweep the radix in-process.
/// Every task of a job must see the same values while a collective is in
/// flight (they shape the shared round schedule).
struct CollTuning {
  /// Pipeline slice in bytes. Must be a multiple of 64 so no combine
  /// element ever straddles a slice boundary.
  std::size_t slice_bytes = kPipelineSliceBytes;
  /// Fan-out of the k-nomial software broadcast/reduce trees (>= 2).
  int radix = 2;
  /// When false, the master blocks on each network round before starting
  /// the next slice (the pre-pipeline schedule; benches use it as the
  /// "before" arm of the overlap A/B).
  bool overlap = true;
  /// Rectangle-broadcast relay chunk in bytes (PAMIX_RECT_CHUNK, K/M
  /// suffixes accepted, exported as config.rect_chunk). Interior nodes
  /// forward chunk k down their color tree while chunk k+1 is still
  /// arriving — cut-through instead of store-and-forward. 0 selects the
  /// legacy whole-slice store-and-forward relay (the A/B baseline arm).
  std::size_t rect_chunk = kRectChunkBytes;
};

CollTuning& tuning();

/// Register the software-collective dispatch on every context of a client.
/// Called from Client construction; callable again idempotently.
void register_collective_dispatch(Client& client);

void barrier(Context& ctx, Geometry& g);

/// Always-software barrier, regardless of optimization state. Used to
/// fence optimize/deoptimize transitions (the software path works in both
/// states, so every member can meet here while they disagree about the
/// classroute).
void software_barrier(Context& ctx, Geometry& g);

void broadcast(Context& ctx, Geometry& g, std::size_t root_rank, void* buffer,
               std::size_t bytes);

void allreduce(Context& ctx, Geometry& g, const void* sendbuf, void* recvbuf,
               std::size_t bytes, hw::CombineOp op, hw::CombineType type);

void reduce(Context& ctx, Geometry& g, std::size_t root_rank, const void* sendbuf,
            void* recvbuf, std::size_t bytes, hw::CombineOp op, hw::CombineType type);

// --- Extensions (paper §VI future work) -------------------------------------

/// Pairwise-exchange all-to-all: `bytes_per_rank` from/to every member.
void alltoall(Context& ctx, Geometry& g, const void* sendbuf, void* recvbuf,
              std::size_t bytes_per_rank);

void gather(Context& ctx, Geometry& g, std::size_t root_rank, const void* sendbuf,
            void* recvbuf, std::size_t bytes_per_rank);

void scatter(Context& ctx, Geometry& g, std::size_t root_rank, const void* sendbuf,
             void* recvbuf, std::size_t bytes_per_rank);

/// Allgather: every member contributes `bytes_per_rank`; every member
/// receives the full concatenation in rank order.
void allgather(Context& ctx, Geometry& g, const void* sendbuf, void* recvbuf,
               std::size_t bytes_per_rank);

/// Block reduce-scatter: elementwise reduction of each member's
/// (size * bytes_per_rank) vector, with rank r receiving block r.
void reduce_scatter(Context& ctx, Geometry& g, const void* sendbuf, void* recvbuf,
                    std::size_t bytes_per_rank, hw::CombineOp op, hw::CombineType type);

/// Multicolor rectangle broadcast (Figure 10), functional: the message is
/// split into one slice per color and each slice streams down its own
/// edge-disjoint spanning tree over PAMI point-to-point sends (torus
/// links), rather than the collective network. Slices move in
/// tuning().rect_chunk-sized chunks with a bounded relay window
/// (kRectWindowChunks) so an interior node forwards chunk k while chunk
/// k+1 is still arriving; every chunk send carries the claimed link's
/// torus hint bits. rect_chunk == 0 falls back to whole-slice
/// store-and-forward. Requires a rectangle-eligible geometry; falls back
/// to the regular broadcast otherwise (counted in coll.rect_fallbacks,
/// warned once). The constructed trees are cached on the geometry.
void rectangle_broadcast(Context& ctx, Geometry& g, std::size_t root_rank, void* buffer,
                         std::size_t bytes);

}  // namespace pamix::pami::coll
