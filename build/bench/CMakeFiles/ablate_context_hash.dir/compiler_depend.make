# Empty compiler generated dependencies file for ablate_context_hash.
# This may be replaced when dependencies are built.
