// Communicator management: dup, split, rectangular detection, and the
// MPIX optimize/deoptimize classroute rotation.
#include <gtest/gtest.h>

#include "mpi/mpi.h"

namespace pamix::mpi {
namespace {

class MpiComm : public ::testing::Test {
 protected:
  MpiComm() : machine_(hw::TorusGeometry({2, 2, 1, 1, 1}), 2), world_(machine_, MpiConfig{}) {}
  void spmd(const std::function<void(Mpi&)>& body) {
    machine_.run_spmd([&](int task) {
      Mpi& mpi = world_.at(task);
      mpi.init(ThreadLevel::Single);
      body(mpi);
      mpi.finalize();
    });
  }
  runtime::Machine machine_;
  MpiWorld world_;
};

TEST_F(MpiComm, WorldIsOptimizedOutOfTheBox) {
  spmd([&](Mpi& mpi) {
    EXPECT_TRUE(mpi.comm_is_optimized(mpi.world()));
    EXPECT_EQ(mpi.size(mpi.world()), 8);
  });
}

TEST_F(MpiComm, DupBehavesLikeParent) {
  spmd([&](Mpi& mpi) {
    const Comm w = mpi.world();
    const Comm d = mpi.dup(w);
    EXPECT_EQ(mpi.rank(d), mpi.rank(w));
    EXPECT_EQ(mpi.size(d), mpi.size(w));
    // Same-tag traffic on the two communicators does not cross.
    const int me = mpi.rank(w);
    if (me == 0) {
      const int on_w = 1, on_d = 2;
      mpi.send(&on_w, sizeof(int), 1, 0, w);
      mpi.send(&on_d, sizeof(int), 1, 0, d);
    } else if (me == 1) {
      int from_d = 0, from_w = 0;
      mpi.recv(&from_d, sizeof(int), 0, 0, d);
      mpi.recv(&from_w, sizeof(int), 0, 0, w);
      EXPECT_EQ(from_d, 2);
      EXPECT_EQ(from_w, 1);
    }
    double x = 1, sum = 0;
    mpi.allreduce(&x, &sum, 1, Type::Double, Op::Add, d);
    EXPECT_DOUBLE_EQ(sum, 8.0);
  });
}

TEST_F(MpiComm, SplitEvenOdd) {
  spmd([&](Mpi& mpi) {
    const Comm w = mpi.world();
    const int me = mpi.rank(w);
    const Comm half = mpi.split(w, me % 2, me);
    EXPECT_EQ(mpi.size(half), 4);
    EXPECT_EQ(mpi.rank(half), me / 2);
    double in = me, sum = 0;
    mpi.allreduce(&in, &sum, 1, Type::Double, Op::Add, half);
    // Even ranks: 0+2+4+6 = 12; odd: 1+3+5+7 = 16.
    EXPECT_DOUBLE_EQ(sum, me % 2 == 0 ? 12.0 : 16.0);
  });
}

TEST_F(MpiComm, SplitByNodeIsRectangularAndOptimizable) {
  spmd([&](Mpi& mpi) {
    const Comm w = mpi.world();
    const int me = mpi.rank(w);
    // First two nodes vs last two: contiguous full-ppn node ranges — the
    // detection should produce an axial geometry eligible for a classroute.
    const Comm row = mpi.split(w, me / 4, me);
    EXPECT_EQ(mpi.size(row), 4);
    // (No "not yet optimized" assertion here: the geometry is shared, so a
    // fast peer may already have optimized it before we check.)
    EXPECT_TRUE(mpi.mpix_optimize(row));
    EXPECT_TRUE(mpi.comm_is_optimized(row));
    // Accelerated collectives now run on the sub-communicator.
    double in = 1, sum = 0;
    mpi.allreduce(&in, &sum, 1, Type::Double, Op::Add, row);
    EXPECT_DOUBLE_EQ(sum, 4.0);
    mpi.barrier(row);
    mpi.mpix_deoptimize(row);
    EXPECT_FALSE(mpi.comm_is_optimized(row));
    // Collectives still work, now via the software path.
    mpi.allreduce(&in, &sum, 1, Type::Double, Op::Add, row);
    EXPECT_DOUBLE_EQ(sum, 4.0);
  });
}

TEST_F(MpiComm, IrregularSplitIsNotOptimizable) {
  spmd([&](Mpi& mpi) {
    const Comm w = mpi.world();
    const int me = mpi.rank(w);
    // One rank per node (local rank 0 only): not a full-ppn rectangle.
    const Comm sparse = mpi.split(w, me % 2 == 0 ? 0 : 1, me);
    if (me % 2 == 0) {
      EXPECT_FALSE(mpi.mpix_optimize(sparse));
      EXPECT_FALSE(mpi.comm_is_optimized(sparse));
      double in = 1, sum = 0;
      mpi.allreduce(&in, &sum, 1, Type::Double, Op::Add, sparse);
      EXPECT_DOUBLE_EQ(sum, 4.0);
    }
  });
}

TEST_F(MpiComm, NestedSplits) {
  spmd([&](Mpi& mpi) {
    const Comm w = mpi.world();
    const int me = mpi.rank(w);
    const Comm half = mpi.split(w, me / 4, me);
    const Comm quarter = mpi.split(half, mpi.rank(half) / 2, mpi.rank(half));
    EXPECT_EQ(mpi.size(quarter), 2);
    double in = me, mx = -1;
    mpi.allreduce(&in, &mx, 1, Type::Double, Op::Max, quarter);
    EXPECT_GE(mx, in);
  });
}

TEST_F(MpiComm, SplitKeyReordersRanks) {
  spmd([&](Mpi& mpi) {
    const Comm w = mpi.world();
    const int me = mpi.rank(w);
    // Reverse ranks: key = -rank.
    const Comm rev = mpi.split(w, 0, -me);
    EXPECT_EQ(mpi.rank(rev), 7 - me);
  });
}

}  // namespace
}  // namespace pamix::mpi
