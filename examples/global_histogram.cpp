// Global histogram — the multi-model application pattern of paper §III-A:
// an ARMCI/UPC-style one-sided runtime and a Charm++-style message-driven
// runtime, both running over PAMI on the same machine.
//
// Phase 1 (ARMCI): every task bins a local data stream and atomically
// accumulates its counts into a globally-shared histogram with one-sided
// ARMCI_Acc operations (no receives posted anywhere).
//
// Phase 2 (chares): a message-driven reduction over the histogram finds
// the argmax bin — entry-method invocations hop a comparison token across
// a chare array, and the run ends on quiescence detection.
//
// Run:  ./global_histogram
#include <cstdio>
#include <cstring>
#include <random>

#include "models/armci.h"
#include "models/chare.h"
#include "runtime/machine.h"

using namespace pamix;

namespace {
constexpr int kBins = 64;
constexpr int kSamplesPerTask = 200000;
}  // namespace

int main() {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), /*ppn=*/1);
  pami::ClientWorld world(machine, pami::ClientConfig{});
  std::printf("phase 1: ARMCI one-sided histogram, %d tasks x %d samples, %d bins\n",
              machine.task_count(), kSamplesPerTask, kBins);

  std::atomic<std::int64_t> reported_max{-1};
  std::atomic<int> reported_bin{-1};

  machine.run_spmd([&](int task) {
    // ---- Phase 1: one-sided accumulate into task 0's histogram ----------
    models::Armci armci(world, task);
    auto mem = armci.malloc_shared(kBins * sizeof(std::int64_t));
    auto* hist = static_cast<std::int64_t*>(mem->local(0));
    if (task == 0) std::memset(hist, 0, kBins * sizeof(std::int64_t));
    armci.barrier();

    // Local binning of a skewed synthetic stream.
    std::mt19937 rng(1234u + static_cast<unsigned>(task));
    std::normal_distribution<double> dist(kBins * 0.6, kBins * 0.11);
    std::int64_t local[kBins] = {};
    for (int i = 0; i < kSamplesPerTask; ++i) {
      int bin = static_cast<int>(dist(rng));
      if (bin < 0) bin = 0;
      if (bin >= kBins) bin = kBins - 1;
      ++local[bin];
    }
    // One atomic accumulate of the whole vector (target-side application).
    armci.accumulate(0, hist, local, kBins);
    // Everyone keeps the target progressing until globally fenced.
    armci.barrier();

    // ---- Phase 2: message-driven argmax over the shared histogram -------
    // Chare e compares bin e against the running (bin,count) token and
    // forwards; element kBins-1 reports the result.
    struct Token {
      int best_bin;
      std::int64_t best_count;
    };
    models::ChareRuntime rt(
        world, task, kBins,
        [&](int element, int, const std::byte* data, std::size_t bytes,
            models::ChareSendApi& api) {
          Token t;
          std::memcpy(&t, data, bytes);
          // Read the count for my bin out of the global histogram (task 0
          // owns it; chare homes are spread, so use ARMCI-style get
          // through the global VA — here directly, since phase 1 fenced).
          const std::int64_t mine = hist[element];
          if (mine > t.best_count) {
            t.best_count = mine;
            t.best_bin = element;
          }
          if (element + 1 < kBins) {
            api.send(element + 1, 0, &t, sizeof(t));
          } else {
            reported_bin.store(t.best_bin);
            reported_max.store(t.best_count);
          }
        });
    if (task == 0) {
      const Token t{-1, -1};
      rt.send(0, 0, &t, sizeof(t));
    }
    rt.run_to_quiescence();
  });

  const int total = machine.task_count() * kSamplesPerTask;
  std::printf("phase 2: chare argmax complete at quiescence\n");
  std::printf("  argmax bin = %d with %lld of %d samples (expected near bin %d)\n",
              reported_bin.load(), static_cast<long long>(reported_max.load()), total,
              static_cast<int>(kBins * 0.6));
  return reported_bin.load() >= 0 ? 0 : 1;
}
