// 5D torus geometry — coordinates, ranks, links and deterministic routing
// for the BG/Q interconnect.
//
// The BG/Q network is a five-dimensional torus with dimensions labelled
// A, B, C, D, E; every node has ten links (two per dimension, "+" and "-").
// Each link moves 2 GB/s raw in each direction; packets carry a 32-byte
// header and up to 512 bytes of payload in 32-byte increments, giving a
// peak application payload rate of ~1.8 GB/s per link direction.
//
// This header is pure geometry: coordinate arithmetic, hop counts, and the
// dimension-ordered deterministic routing PAMI relies on for MPI ordering.
// It is shared by the functional transport and the timing simulator.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <string>

namespace pamix::hw {

inline constexpr int kTorusDims = 5;

/// Dimension labels in BG/Q order.
enum class Dim : std::uint8_t { A = 0, B = 1, C = 2, D = 3, E = 4 };

/// Link direction along a dimension.
enum class Dir : std::uint8_t { Plus = 0, Minus = 1 };

/// Torus hint bit for one (dimension, direction): descriptors carry a mask
/// of these to force the router's direction choice per dimension, exactly
/// the hint bits of the real MU descriptor. PAMI sets them where the
/// algorithm — not the shortest path — must pick the wire, e.g. to keep
/// the rectangle broadcast's color trees on their claimed links in
/// extent-2 rings where both directions are one hop.
constexpr std::uint16_t torus_hint(Dim d, Dir dir) {
  return static_cast<std::uint16_t>(1u << (2 * static_cast<int>(d) + static_cast<int>(dir)));
}

inline const char* dim_name(Dim d) {
  static constexpr const char* names[] = {"A", "B", "C", "D", "E"};
  return names[static_cast<int>(d)];
}

/// A node position in the torus.
struct TorusCoords {
  std::array<int, kTorusDims> c{};

  int& operator[](int i) { return c[static_cast<std::size_t>(i)]; }
  int operator[](int i) const { return c[static_cast<std::size_t>(i)]; }
  friend bool operator==(const TorusCoords&, const TorusCoords&) = default;
};

/// One of the ten directed links leaving a node.
struct TorusLink {
  int node = 0;  // source node id
  Dim dim = Dim::A;
  Dir dir = Dir::Plus;
  friend bool operator==(const TorusLink&, const TorusLink&) = default;
};

/// Flip a link's direction (the link a neighbor would use to answer over
/// the same wire pair). The source node is unchanged — pair with
/// TorusGeometry::neighbor to build the true reverse link.
constexpr Dir reverse(Dir dir) { return dir == Dir::Plus ? Dir::Minus : Dir::Plus; }

/// Geometry of a (sub)machine: a 5D torus with per-dimension sizes.
/// BG/Q midplanes are 4x4x4x4x2; a rack is 4x4x4x8x2 (1024 nodes); the
/// largest configuration is 256 racks.
class TorusGeometry {
 public:
  TorusGeometry() : TorusGeometry({1, 1, 1, 1, 1}) {}

  explicit TorusGeometry(std::array<int, kTorusDims> dims) : dims_(dims) {
    nodes_ = 1;
    for (int i = 0; i < kTorusDims; ++i) {
      assert(dims_[static_cast<std::size_t>(i)] >= 1);
      nodes_ *= dims_[static_cast<std::size_t>(i)];
    }
  }

  /// Common configurations used throughout tests and benches.
  static TorusGeometry single_node() { return TorusGeometry({1, 1, 1, 1, 1}); }
  static TorusGeometry midplane() { return TorusGeometry({4, 4, 4, 4, 2}); }  // 512 nodes
  static TorusGeometry rack() { return TorusGeometry({4, 4, 4, 8, 2}); }      // 1024 nodes
  static TorusGeometry racks(int n) {
    // Grow the A dimension rack by rack, as BG/Q cabling does for small
    // multi-rack partitions.
    return TorusGeometry({4 * n, 4, 4, 8, 2});
  }

  /// Parse "AxBxCxDxE" (e.g. "4x4x4x8x2"), the format to_string() emits and
  /// the PAMIX_GEOM override accepts. Fewer than five fields pads the rest
  /// with 1; invalid input falls back to `fallback`.
  static TorusGeometry parse(const std::string& spec, TorusGeometry fallback) {
    std::array<int, kTorusDims> dims{1, 1, 1, 1, 1};
    int field = 0;
    int value = 0;
    bool have_digit = false;
    for (char ch : spec) {
      if (ch >= '0' && ch <= '9') {
        value = value * 10 + (ch - '0');
        have_digit = true;
      } else if ((ch == 'x' || ch == 'X') && have_digit && field < kTorusDims - 1) {
        dims[static_cast<std::size_t>(field++)] = value;
        value = 0;
        have_digit = false;
      } else {
        return fallback;
      }
      if (value > 1 << 20) return fallback;
    }
    if (!have_digit || value < 1) return fallback;
    dims[static_cast<std::size_t>(field)] = value;
    for (int d : dims) {
      if (d < 1) return fallback;
    }
    return TorusGeometry(dims);
  }

  int node_count() const { return nodes_; }
  int size(Dim d) const { return dims_[static_cast<std::size_t>(d)]; }
  const std::array<int, kTorusDims>& dims() const { return dims_; }

  /// Node id <-> coordinates (row-major, A slowest).
  TorusCoords coords_of(int node) const {
    assert(node >= 0 && node < nodes_);
    TorusCoords out;
    for (int i = kTorusDims - 1; i >= 0; --i) {
      const int s = dims_[static_cast<std::size_t>(i)];
      out[i] = node % s;
      node /= s;
    }
    return out;
  }

  int node_of(const TorusCoords& c) const {
    int id = 0;
    for (int i = 0; i < kTorusDims; ++i) {
      const int s = dims_[static_cast<std::size_t>(i)];
      assert(c[i] >= 0 && c[i] < s);
      id = id * s + c[i];
    }
    return id;
  }

  /// The node one hop away along (dim, dir), with wraparound.
  int neighbor(int node, Dim d, Dir dir) const {
    TorusCoords c = coords_of(node);
    const int s = size(d);
    const int i = static_cast<int>(d);
    c[i] = (dir == Dir::Plus) ? (c[i] + 1) % s : (c[i] + s - 1) % s;
    return node_of(c);
  }

  /// Signed shortest displacement from a to b along dimension d
  /// (positive = route in Plus direction). Ties (half-ring) go Plus,
  /// matching the deterministic tie-break of the hardware.
  int shortest_delta(int a, int b, Dim d) const {
    const int s = size(d);
    const int i = static_cast<int>(d);
    int delta = (coords_of(b)[i] - coords_of(a)[i] + s) % s;
    if (delta > s / 2 || (s % 2 == 0 && delta == s / 2)) {
      // Plus is preferred on ties; only strictly-longer Plus paths fold over.
      if (delta > s / 2) delta -= s;
    }
    return delta;
  }

  /// Total hop count of the deterministic shortest route.
  int hops(int a, int b) const {
    int h = 0;
    for (int i = 0; i < kTorusDims; ++i) {
      h += std::abs(shortest_delta(a, b, static_cast<Dim>(i)));
    }
    return h;
  }

  /// Deterministic dimension-ordered route from a to b: the exact sequence
  /// of directed links a packet traverses. Dimension order is A,B,C,D,E as
  /// on the hardware's deterministic (non-dynamic) routing, which PAMI uses
  /// for eager data and rendezvous control to preserve MPI ordering.
  template <class LinkVisitor>
  void for_each_route_link(int a, int b, LinkVisitor&& visit) const {
    int cur = a;
    for (int i = 0; i < kTorusDims; ++i) {
      const Dim d = static_cast<Dim>(i);
      int delta = shortest_delta(a, b, d);
      const Dir dir = delta >= 0 ? Dir::Plus : Dir::Minus;
      for (int k = std::abs(delta); k > 0; --k) {
        visit(TorusLink{cur, d, dir});
        cur = neighbor(cur, d, dir);
      }
    }
    assert(cur == b);
  }

  /// Number of directed links in the machine (10 per node when every
  /// dimension has size > 1; a size-1 or size-2 dimension has fewer
  /// distinct links).
  int directed_link_count() const { return nodes_ * 2 * kTorusDims; }

  /// Dense index for a directed link, for per-link accounting tables.
  int link_index(const TorusLink& l) const {
    return (l.node * kTorusDims + static_cast<int>(l.dim)) * 2 + static_cast<int>(l.dir);
  }

  /// Invert link_index back to the directed link it indexes.
  TorusLink link_from_index(int index) const {
    TorusLink l;
    l.dir = static_cast<Dir>(index & 1);
    index >>= 1;
    l.dim = static_cast<Dim>(index % kTorusDims);
    l.node = index / kTorusDims;
    return l;
  }

  std::string to_string() const {
    std::string s;
    for (int i = 0; i < kTorusDims; ++i) {
      if (i) s += "x";
      s += std::to_string(dims_[static_cast<std::size_t>(i)]);
    }
    return s;
  }

 private:
  std::array<int, kTorusDims> dims_;
  int nodes_ = 1;
};

/// Hint mask forcing traffic from `src` onto the directed link with dense
/// index `link` toward the one-hop neighbor `dst`, or 0 when `link` is not
/// an src->dst hop. The rectangle-broadcast relays stamp this on EVERY
/// chunk they forward: in an extent-2 ring both directions reach `dst`, so
/// a single unhinted chunk would let the router collapse the dimension's
/// two color trees onto one wire.
inline std::uint16_t hint_for_link(const TorusGeometry& g, int src, int dst, int link) {
  if (link < 0) return 0;
  const TorusLink l = g.link_from_index(link);
  if (l.node != src || g.neighbor(src, l.dim, l.dir) != dst) return 0;
  return torus_hint(l.dim, l.dir);
}

/// An axis-aligned rectangular block of nodes — the shape eligible for
/// collective-network classroutes (lines, planes, cubes, ...).
struct TorusRectangle {
  TorusCoords lo;  // inclusive lower corner
  TorusCoords hi;  // inclusive upper corner

  bool contains(const TorusCoords& c) const {
    for (int i = 0; i < kTorusDims; ++i) {
      if (c[i] < lo[i] || c[i] > hi[i]) return false;
    }
    return true;
  }

  int node_count() const {
    int n = 1;
    for (int i = 0; i < kTorusDims; ++i) n *= (hi[i] - lo[i] + 1);
    return n;
  }

  static TorusRectangle whole_machine(const TorusGeometry& g) {
    TorusRectangle r;
    for (int i = 0; i < kTorusDims; ++i) {
      r.lo[i] = 0;
      r.hi[i] = g.size(static_cast<Dim>(i)) - 1;
    }
    return r;
  }
};

}  // namespace pamix::hw
