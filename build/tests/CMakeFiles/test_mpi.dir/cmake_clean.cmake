file(REMOVE_RECURSE
  "CMakeFiles/test_mpi.dir/mpi/test_collectives.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/test_collectives.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/test_comm.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/test_comm.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/test_matching.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/test_matching.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/test_pt2pt.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/test_pt2pt.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/test_stress.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/test_stress.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/test_threading.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/test_threading.cpp.o.d"
  "CMakeFiles/test_mpi.dir/mpi/test_wildcards.cpp.o"
  "CMakeFiles/test_mpi.dir/mpi/test_wildcards.cpp.o.d"
  "test_mpi"
  "test_mpi.pdb"
  "test_mpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
