// Zero-allocation steady-state invariant: after warm-up, single-packet
// eager send/receive round trips and work-queue post/advance cycles must
// perform NO global-allocator calls. A counting replacement of the global
// operator new enforces it — if a hidden allocation sneaks back onto the
// fast path (a std::function capture, a per-send vector, an unpooled
// staging buffer), these tests fail by count, not by profile.
//
// This file must be its own test binary: replacing ::operator new is
// program-wide.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "core/client.h"
#include "core/collectives.h"
#include "core/context.h"
#include "runtime/machine.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting global allocator. Counts every operator-new entry point;
// deallocation is left untouched (free is not the invariant under test).
void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (n + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new[](std::size_t n, std::align_val_t align) { return ::operator new(n, align); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace pamix::pami {
namespace {

std::uint64_t allocations() { return g_news.load(std::memory_order_relaxed); }

/// Two-node, single-context world driven single-threaded, so every
/// measured allocation is attributable to the messaging path itself.
class AllocSteadyState : public ::testing::Test {
 protected:
  AllocSteadyState()
      : machine_(hw::TorusGeometry({2, 1, 1, 1, 1}), 1), world_(machine_, make_config()) {}

  static ClientConfig make_config() {
    ClientConfig c;
    c.contexts_per_task = 1;
    c.eager_limit = 1024;
    return c;
  }

  Context& ctx(int task) { return world_.client(task).context(0); }
  void advance_both() {
    ctx(0).advance();
    ctx(1).advance();
  }

  runtime::Machine machine_;
  ClientWorld world_;
};

TEST_F(AllocSteadyState, EagerRoundTripIsAllocationFree) {
  std::vector<std::byte> payload(64, std::byte{0x5A});
  std::vector<std::byte> got(64);
  int delivered = 0;
  ctx(1).set_dispatch(4, [&](Context&, const void*, std::size_t, const void* data,
                             std::size_t bytes, std::size_t, Endpoint, RecvDescriptor*) {
    std::memcpy(got.data(), data, std::min(bytes, got.size()));
    ++delivered;
  });

  int local_done = 0;
  auto round_trip = [&](int times) {
    for (int i = 0; i < times; ++i) {
      SendParams p;
      p.dispatch = 4;
      p.dest = Endpoint{1, 0};
      p.data = payload.data();
      p.data_bytes = payload.size();
      p.on_local_done = [&local_done] { ++local_done; };
      while (ctx(0).send(p) == Result::Eagain) advance_both();
      advance_both();
      advance_both();
    }
  };

  round_trip(16);  // warm-up: pools fill, tables size themselves
  ASSERT_EQ(delivered, 16);

  const std::uint64_t before = allocations();
  round_trip(256);
  const std::uint64_t after = allocations();

  EXPECT_EQ(delivered, 16 + 256);
  EXPECT_EQ(local_done, 16 + 256);
  EXPECT_EQ(after - before, 0u)
      << "steady-state eager send/recv performed " << (after - before)
      << " global allocations over 256 round trips";
}

TEST_F(AllocSteadyState, EagerWithAckRoundTripIsAllocationFree) {
  std::vector<std::byte> payload(64, std::byte{0x11});
  int delivered = 0;
  ctx(1).set_dispatch(5, [&](Context&, const void*, std::size_t, const void*, std::size_t,
                             std::size_t, Endpoint, RecvDescriptor*) { ++delivered; });

  int remote_done = 0;
  auto round_trip = [&](int times) {
    for (int i = 0; i < times; ++i) {
      SendParams p;
      p.dispatch = 5;
      p.dest = Endpoint{1, 0};
      p.data = payload.data();
      p.data_bytes = payload.size();
      p.on_remote_done = [&remote_done] { ++remote_done; };
      while (ctx(0).send(p) == Result::Eagain) advance_both();
      for (int k = 0; k < 4; ++k) advance_both();  // deliver + DONE return
    }
  };

  round_trip(16);
  ASSERT_EQ(remote_done, 16);

  const std::uint64_t before = allocations();
  round_trip(256);
  const std::uint64_t after = allocations();

  EXPECT_EQ(remote_done, 16 + 256);
  EXPECT_EQ(delivered, 16 + 256);
  EXPECT_EQ(after - before, 0u)
      << "steady-state eager-with-ack performed " << (after - before) << " global allocations";
}

TEST_F(AllocSteadyState, SoftwareCollectivesAreAllocationFree) {
  // Software broadcast/allreduce/barrier over active messages: after the
  // pool and the flat match table warm up, the steady state must not
  // touch the global allocator — payloads live in pooled Bufs, completion
  // callables fit their inline capture budget, matching reuses slots.
  auto geom = world_.geometries().get_or_create(42, Topology::list({0, 1}));
  ASSERT_FALSE(geom->optimized());
  std::atomic<std::uint64_t> before{0}, after{0};
  machine_.run_spmd([&](int task) {
    Context& cx = ctx(task);
    const auto rank = static_cast<double>(*geom->rank_of(task));
    std::vector<std::byte> small(256, std::byte{1});   // eager delivery
    std::vector<std::byte> large(2048, std::byte{2});  // rendezvous pull
    std::vector<double> in(8, rank + 1.0), out(8);
    auto iter = [&] {
      coll::broadcast(cx, *geom, 0, small.data(), small.size());
      coll::broadcast(cx, *geom, 1, large.data(), large.size());
      coll::allreduce(cx, *geom, in.data(), out.data(), in.size() * sizeof(double),
                      hw::CombineOp::Add, hw::CombineType::Double);
      ASSERT_DOUBLE_EQ(out[0], 3.0);
      coll::barrier(cx, *geom);
    };
    // Saturation burst: 16 concurrent rendezvous sends each way push the
    // MU packet pools to a depth that strictly dominates anything the
    // (blocking, at most one-outstanding) measured collectives reach —
    // the two free-running tasks hit slightly different packet-buffering
    // peaks from run to run, so warming with the measured pattern alone
    // can leave a pool one block short.
    std::vector<std::byte> scratch(2048);
    std::atomic<int> got{0}, rdone{0};
    cx.set_dispatch(6, [&](Context&, const void*, std::size_t, const void*, std::size_t,
                           std::size_t total, Endpoint, RecvDescriptor* rd) {
      if (rd != nullptr) {
        rd->buffer = scratch.data();
        rd->bytes = total;
        rd->on_complete = [&got] { got.fetch_add(1, std::memory_order_relaxed); };
      } else {
        got.fetch_add(1, std::memory_order_relaxed);
      }
    });
    coll::barrier(cx, *geom);  // dispatch registered on both sides
    for (int i = 0; i < 16; ++i) {
      SendParams p;
      p.dispatch = 6;
      p.dest = Endpoint{task == 0 ? 1 : 0, 0};
      p.data = large.data();
      p.data_bytes = large.size();
      p.on_remote_done = [&rdone] { rdone.fetch_add(1, std::memory_order_relaxed); };
      while (cx.send(p) == Result::Eagain) cx.advance();
    }
    while (rdone.load(std::memory_order_relaxed) < 16 ||
           got.load(std::memory_order_relaxed) < 16) {
      cx.advance();
    }

    // One pass = the exact barrier/loop shape that gets measured, so the
    // match tables and payload pools see an identical pattern too.
    auto pass = [&] {
      coll::barrier(cx, *geom);
      coll::barrier(cx, *geom);
      for (int i = 0; i < 64; ++i) iter();
      coll::barrier(cx, *geom);  // trailing barrier fences the snapshots
    };
    pass();  // warm-up: pool + slot table fill
    pass();  // includes one pass->pass transition (its packet overlap
             // pattern differs from the burst-drain->pass boundary)
    if (task == 0) before.store(allocations());
    pass();  // measured
    if (task == 0) after.store(allocations());
  });
  EXPECT_EQ(after.load() - before.load(), 0u)
      << "steady-state software collectives performed " << (after.load() - before.load())
      << " global allocations over 64 iterations";
}

TEST_F(AllocSteadyState, RectangleBroadcastStreamingIsAllocationFree) {
  // Cut-through rectangle broadcast: after the tree cache, the per-color
  // relay scratch, and the pre-reserved chunk pool warm up, streaming a
  // payload chunk-by-chunk down the color trees must not touch the global
  // allocator — chunks land in pooled Bufs sized by CollState::reserve,
  // acks are zero-byte (bufferless) deposits, and the per-color state
  // vectors reuse their capacity. Runs both delivery regimes: chunks
  // below the eager limit (pooled deposit copy) and above it
  // (rendezvous pull into a pooled buffer).
  auto geom = world_.geometries().world_geometry();
  ASSERT_TRUE(geom->optimized()) << "2x1x1x1x1 must be rectangle-eligible";
  const std::size_t bytes = 40960;
  for (const std::size_t chunk : {std::size_t{256}, std::size_t{2048}}) {
    const std::size_t saved = coll::tuning().rect_chunk;
    coll::tuning().rect_chunk = chunk;
    std::atomic<std::uint64_t> before{0}, after{0};
    machine_.run_spmd([&](int task) {
      Context& cx = ctx(task);
      std::vector<std::uint8_t> buf(bytes);
      auto pass = [&](int iters) {
        for (int i = 0; i < iters; ++i) {
          if (*geom->rank_of(task) == 0) {
            std::fill(buf.begin(), buf.end(), static_cast<std::uint8_t>(i + 1));
          }
          coll::rectangle_broadcast(cx, *geom, 0, buf.data(), bytes);
          ASSERT_EQ(buf[bytes - 1], static_cast<std::uint8_t>(i + 1)) << "task " << task;
        }
        coll::barrier(cx, *geom);  // fences the snapshots below
      };
      // Warm-up passes: tree cache, relay scratch, reserved pool, slot
      // table, MU staging. Two passes so the pass->pass boundary (its
      // chunk-overlap pattern differs from a cold start) is seen too.
      pass(16);
      pass(16);
      if (task == 0) before.store(allocations());
      pass(32);  // measured
      if (task == 0) after.store(allocations());
    });
    coll::tuning().rect_chunk = saved;
    EXPECT_EQ(after.load() - before.load(), 0u)
        << "steady-state streamed rectangle broadcast (chunk " << chunk << ") performed "
        << (after.load() - before.load()) << " global allocations over 32 iterations";
  }
}

TEST_F(AllocSteadyState, WorkQueuePostAdvanceIsAllocationFree) {
  WorkQueue& q = ctx(0).work_queue();
  int ran = 0;
  for (int i = 0; i < 16; ++i) {  // warm-up
    q.post([&ran] { ++ran; });
    q.advance();
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 1024; ++i) {
    q.post([&ran] { ++ran; });
    q.advance();
  }
  const std::uint64_t after = allocations();
  EXPECT_EQ(ran, 16 + 1024);
  EXPECT_EQ(after - before, 0u)
      << "work-queue post/advance performed " << (after - before) << " global allocations";
}

}  // namespace
}  // namespace pamix::pami
