// Halo exchange — a 2D Jacobi heat-diffusion solver over MPI on the
// functional BG/Q machine: the hybrid-application pattern the paper's
// message-rate work targets (many nonblocking sends/receives per step,
// completed with the two-phase waitall, plus an allreduce for the global
// residual on the collective network).
//
// The 2D process grid is mapped onto the torus; each rank owns an NxN
// tile and exchanges one-row halos with its four neighbors every step.
// The result is verified against a serial solve of the same global grid.
//
// Run:  ./halo_exchange
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpi/mpi.h"

using namespace pamix;

namespace {

constexpr int kGridRanks = 4;   // 2x2 process grid
constexpr int kTile = 32;       // per-rank tile (interior)
constexpr int kSteps = 200;

struct Tile {
  // (kTile+2)^2 with ghost ring.
  std::vector<double> cur, next;
  Tile() : cur((kTile + 2) * (kTile + 2), 0.0), next(cur) {}
  double& at(std::vector<double>& v, int r, int c) { return v[r * (kTile + 2) + c]; }
};

/// Serial reference: the full (2*kTile)^2 grid.
std::vector<double> serial_solve() {
  const int n = 2 * kTile + 2;
  std::vector<double> cur(n * n, 0.0), next(cur);
  // Hot west edge.
  for (int r = 0; r < n; ++r) cur[r * n] = next[r * n] = 100.0;
  for (int s = 0; s < kSteps; ++s) {
    for (int r = 1; r < n - 1; ++r) {
      for (int c = 1; c < n - 1; ++c) {
        next[r * n + c] = 0.25 * (cur[(r - 1) * n + c] + cur[(r + 1) * n + c] +
                                  cur[r * n + c - 1] + cur[r * n + c + 1]);
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace

int main() {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), /*ppn=*/1);
  mpi::MpiWorld world(machine, mpi::MpiConfig{});

  const std::vector<double> reference = serial_solve();
  std::printf("2D Jacobi on a 2x2 rank grid, %dx%d tiles, %d steps\n", kTile, kTile, kSteps);

  machine.run_spmd([&](int task) {
    mpi::Mpi& mp = world.at(task);
    mp.init(mpi::ThreadLevel::Single);
    const mpi::Comm w = mp.world();
    const int me = mp.rank(w);
    const int pr = me / 2;  // process-grid row, col (2x2)
    const int pc = me % 2;
    const int north = pr > 0 ? me - 2 : -1;
    const int south = pr < 1 ? me + 2 : -1;
    const int west = pc > 0 ? me - 1 : -1;
    const int east = pc < 1 ? me + 1 : -1;

    Tile t;
    // Global boundary: hot west edge on the leftmost column of ranks.
    if (pc == 0) {
      for (int r = 0; r < kTile + 2; ++r) {
        t.at(t.cur, r, 0) = t.at(t.next, r, 0) = 100.0;
      }
    }

    std::vector<double> send_n(kTile), send_s(kTile), send_w(kTile), send_e(kTile);
    std::vector<double> recv_n(kTile), recv_s(kTile), recv_w(kTile), recv_e(kTile);

    for (int step = 0; step < kSteps; ++step) {
      // Pack halos.
      for (int i = 0; i < kTile; ++i) {
        send_n[i] = t.at(t.cur, 1, i + 1);
        send_s[i] = t.at(t.cur, kTile, i + 1);
        send_w[i] = t.at(t.cur, i + 1, 1);
        send_e[i] = t.at(t.cur, i + 1, kTile);
      }
      // Nonblocking exchange, completed with the two-phase waitall.
      std::vector<mpi::Request> reqs;
      auto xchg = [&](int peer, std::vector<double>& out, std::vector<double>& in, int tag) {
        if (peer < 0) return;
        reqs.push_back(mp.irecv(in.data(), kTile * sizeof(double), peer, tag, w));
        reqs.push_back(mp.isend(out.data(), kTile * sizeof(double), peer, tag, w));
      };
      xchg(north, send_n, recv_n, 0);
      xchg(south, send_s, recv_s, 0);
      xchg(west, send_w, recv_w, 1);
      xchg(east, send_e, recv_e, 1);
      mp.waitall(reqs);

      // Unpack into the ghost ring.
      for (int i = 0; i < kTile; ++i) {
        if (north >= 0) t.at(t.cur, 0, i + 1) = recv_n[i];
        if (south >= 0) t.at(t.cur, kTile + 1, i + 1) = recv_s[i];
        if (west >= 0) t.at(t.cur, i + 1, 0) = recv_w[i];
        if (east >= 0) t.at(t.cur, i + 1, kTile + 1) = recv_e[i];
      }

      // Stencil.
      double local_delta = 0;
      for (int r = 1; r <= kTile; ++r) {
        for (int c = 1; c <= kTile; ++c) {
          const double v = 0.25 * (t.at(t.cur, r - 1, c) + t.at(t.cur, r + 1, c) +
                                   t.at(t.cur, r, c - 1) + t.at(t.cur, r, c + 1));
          local_delta = std::max(local_delta, std::abs(v - t.at(t.cur, r, c)));
          t.at(t.next, r, c) = v;
        }
      }
      // Keep the hot west edge pinned.
      if (pc == 0) {
        for (int r = 0; r < kTile + 2; ++r) t.at(t.next, r, 0) = 100.0;
      }
      std::swap(t.cur, t.next);

      // Global residual every 50 steps — the collective-network allreduce.
      if (step % 50 == 49) {
        double global_delta = 0;
        mp.allreduce(&local_delta, &global_delta, 1, mpi::Type::Double, mpi::Op::Max, w);
        if (me == 0) std::printf("  step %3d: max residual %.6f\n", step + 1, global_delta);
      }
    }

    // Verify the tile against the serial reference.
    const int n = 2 * kTile + 2;
    double max_err = 0;
    for (int r = 1; r <= kTile; ++r) {
      for (int c = 1; c <= kTile; ++c) {
        const int gr = pr * kTile + r;
        const int gc = pc * kTile + c;
        max_err = std::max(max_err,
                           std::abs(t.at(t.cur, r, c) - reference[gr * n + gc]));
      }
    }
    double global_err = 0;
    mp.allreduce(&max_err, &global_err, 1, mpi::Type::Double, mpi::Op::Max, w);
    if (me == 0) {
      std::printf("max |parallel - serial| = %.3e  ->  %s\n", global_err,
                  global_err < 1e-9 ? "VERIFIED" : "MISMATCH");
    }
    mp.finalize();
  });
  return 0;
}
