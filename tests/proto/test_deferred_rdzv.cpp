// Deferred rendezvous, truncation, and injection backpressure — the
// corner paths of the proto/ layer that the happy-path pt2pt tests skip.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/client.h"
#include "core/context.h"
#include "obs/pvar.h"
#include "proto/protocol.h"
#include "runtime/machine.h"

namespace pamix::pami {
namespace {

std::vector<std::byte> pattern(std::size_t n, int salt = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i * 13 + salt);
  return v;
}

/// Two-node fixture (inter-node MU path) with a small eager limit so
/// modest payloads go rendezvous.
class DeferredRdzv : public ::testing::Test {
 protected:
  DeferredRdzv() : machine_(hw::TorusGeometry({2, 1, 1, 1, 1}), 1), world_(machine_, make_config()) {}

  static ClientConfig make_config() {
    ClientConfig c;
    c.contexts_per_task = 1;
    c.eager_limit = 1024;
    return c;
  }

  Context& ctx(int task) { return world_.client(task).context(0); }
  void advance_both() {
    ctx(0).advance();
    ctx(1).advance();
  }

  runtime::Machine machine_;
  ClientWorld world_;
};

/// An RTS whose handler defers: no data moves until the upper layer calls
/// complete_deferred_rdzv — the MPI unexpected-message path.
TEST_F(DeferredRdzv, MuDeferredPullCompletesAfterMatch) {
  const auto payload = pattern(8000);  // > eager_limit → rendezvous
  std::uint64_t handle = 0;
  std::size_t announced = 0;
  ctx(1).set_dispatch(4, [&](Context&, const void*, std::size_t, const void* pipe, std::size_t,
                             std::size_t total, Endpoint, RecvDescriptor* recv) {
    ASSERT_EQ(pipe, nullptr);
    ASSERT_NE(recv, nullptr);
    announced = total;
    recv->defer = true;
    handle = recv->defer_handle;
  });

  SendParams p;
  p.dispatch = 4;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  bool remote_done = false;
  p.on_remote_done = [&] { remote_done = true; };
  ASSERT_EQ(ctx(0).send(p), Result::Success);

  for (int i = 0; i < 100 && handle == 0; ++i) advance_both();
  ASSERT_NE(handle, 0u);
  EXPECT_EQ(announced, payload.size());
  // Parked RTS: pending state on the receiver, but nothing pollable — a
  // commthread may sleep; only a match can make progress.
  EXPECT_TRUE(ctx(1).has_pending_state());
  EXPECT_FALSE(remote_done);

  std::vector<std::byte> recv_buf(payload.size());
  bool complete = false;
  ctx(1).complete_deferred_rdzv(handle, recv_buf.data(), recv_buf.size(),
                                [&] { complete = true; });
  for (int i = 0; i < 200 && !(complete && remote_done); ++i) advance_both();
  ASSERT_TRUE(complete);
  EXPECT_TRUE(remote_done);
  EXPECT_EQ(recv_buf, payload);
  EXPECT_FALSE(ctx(0).has_pending_state());
  EXPECT_FALSE(ctx(1).has_pending_state());
}

/// Deferred pull with a window smaller than the message: only accept_bytes
/// land, and the sender is still fully acknowledged.
TEST_F(DeferredRdzv, DeferredPullTruncatesToReceiverWindow) {
  const auto payload = pattern(6000, 5);
  std::uint64_t handle = 0;
  ctx(1).set_dispatch(4, [&](Context&, const void*, std::size_t, const void*, std::size_t,
                             std::size_t, Endpoint, RecvDescriptor* recv) {
    recv->defer = true;
    handle = recv->defer_handle;
  });

  SendParams p;
  p.dispatch = 4;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  bool remote_done = false;
  p.on_remote_done = [&] { remote_done = true; };
  ASSERT_EQ(ctx(0).send(p), Result::Success);
  for (int i = 0; i < 100 && handle == 0; ++i) advance_both();
  ASSERT_NE(handle, 0u);

  const std::size_t kAccept = 100;
  std::vector<std::byte> recv_buf(kAccept, std::byte{0});
  bool complete = false;
  ctx(1).complete_deferred_rdzv(handle, recv_buf.data(), kAccept, [&] { complete = true; });
  for (int i = 0; i < 200 && !(complete && remote_done); ++i) advance_both();
  ASSERT_TRUE(complete);
  EXPECT_TRUE(remote_done);
  EXPECT_TRUE(std::memcmp(recv_buf.data(), payload.data(), kAccept) == 0);
  EXPECT_FALSE(ctx(1).has_pending_state());
}

/// Multi-packet eager arrival where the handler accepts fewer bytes than
/// the message carries: the continuation packets beyond the window are
/// dropped on the floor, completion still fires.
TEST_F(DeferredRdzv, EagerReassemblyTruncates) {
  ClientConfig c;
  c.contexts_per_task = 1;
  c.eager_limit = 4096;  // keep a ~3 KB message eager (multi-packet)
  runtime::Machine m(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  ClientWorld w(m, c);
  Context& tx = w.client(0).context(0);
  Context& rx = w.client(1).context(0);

  const auto payload = pattern(3000, 9);
  const std::size_t kAccept = 100;
  std::vector<std::byte> recv_buf(kAccept, std::byte{0});
  bool complete = false;
  rx.set_dispatch(2, [&](Context&, const void*, std::size_t, const void* pipe, std::size_t,
                         std::size_t total, Endpoint, RecvDescriptor* recv) {
    ASSERT_EQ(pipe, nullptr);  // > one packet
    ASSERT_EQ(total, payload.size());
    recv->buffer = recv_buf.data();
    recv->bytes = kAccept;
    recv->on_complete = [&] { complete = true; };
  });

  SendParams p;
  p.dispatch = 2;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  ASSERT_EQ(tx.send(p), Result::Success);
  for (int i = 0; i < 200 && !complete; ++i) {
    tx.advance();
    rx.advance();
  }
  ASSERT_TRUE(complete);
  EXPECT_TRUE(std::memcmp(recv_buf.data(), payload.data(), kAccept) == 0);
  EXPECT_FALSE(rx.has_pending_state());  // reassembly state retired
}

/// Intra-node zero-copy arrival deferred by the handler, then completed:
/// the copy happens straight out of the sender's buffer at match time.
TEST(DeferredShm, ZeroCopyDeferredCompletesAfterMatch) {
  runtime::Machine machine(hw::TorusGeometry({1, 1, 1, 1, 1}), 2);  // 2 procs, 1 node
  ClientConfig c;
  c.contexts_per_task = 1;
  c.shm_eager_limit = 256;
  ClientWorld world(machine, c);
  Context& tx = world.client(0).context(0);
  Context& rx = world.client(1).context(0);

  const auto payload = pattern(4096, 3);
  std::uint64_t handle = 0;
  rx.set_dispatch(6, [&](Context&, const void*, std::size_t, const void* pipe, std::size_t,
                         std::size_t total, Endpoint, RecvDescriptor* recv) {
    ASSERT_EQ(pipe, nullptr);  // zero-copy announcement
    ASSERT_EQ(total, payload.size());
    ASSERT_NE(recv, nullptr);
    recv->defer = true;
    handle = recv->defer_handle;
  });

  SendParams p;
  p.dispatch = 6;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();
  bool local_done = false;
  p.on_local_done = [&] { local_done = true; };
  ASSERT_EQ(tx.send(p), Result::Success);
  // Zero-copy: the source buffer stays busy until the receiver drains it.
  EXPECT_FALSE(local_done);

  for (int i = 0; i < 100 && handle == 0; ++i) rx.advance();
  ASSERT_NE(handle, 0u);
  EXPECT_TRUE(rx.has_pending_state());

  std::vector<std::byte> recv_buf(payload.size());
  bool complete = false;
  rx.complete_deferred_rdzv(handle, recv_buf.data(), recv_buf.size(), [&] { complete = true; });
  ASSERT_TRUE(complete);
  EXPECT_EQ(recv_buf, payload);
  for (int i = 0; i < 100 && !local_done; ++i) tx.advance();
  EXPECT_TRUE(local_done);
  EXPECT_FALSE(tx.has_pending_state());
  EXPECT_FALSE(rx.has_pending_state());
}

/// Injection backpressure on the RTS itself: tiny FIFOs saturate, send()
/// bounces with Eagain and rolls its state back (no RTS counted, no send
/// state leaked), and the same send succeeds after draining.
TEST(RdzvBackpressure, RtsEagainRollsBackAndRetries) {
  runtime::MachineOptions opt;
  opt.inj_fifo_capacity = 1;
  opt.rec_fifo_capacity = 1;
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1, opt);
  ClientConfig c;
  c.contexts_per_task = 1;
  c.eager_limit = 64;
  ClientWorld world(machine, c);
  Context& tx = world.client(0).context(0);
  Context& rx = world.client(1).context(0);

  const auto payload = pattern(1024, 7);
  int delivered = 0;
  std::vector<std::vector<std::byte>> bufs;
  rx.set_dispatch(9, [&](Context&, const void*, std::size_t, const void*, std::size_t,
                         std::size_t total, Endpoint, RecvDescriptor* recv) {
    bufs.emplace_back(total);
    recv->buffer = bufs.back().data();
    recv->bytes = total;
    recv->on_complete = [&] { ++delivered; };
  });

  SendParams p;
  p.dispatch = 9;
  p.dest = Endpoint{1, 0};
  p.data = payload.data();
  p.data_bytes = payload.size();

  // Saturate: without the receiver advancing, at most a couple of RTS
  // packets fit in flight before send() must bounce.
  const obs::PvarSnapshot rts_before =
      tx.proto_obs(proto::ProtocolKind::Rdzv).pvars.snapshot();
  int accepted = 0;
  Result r = Result::Success;
  for (int i = 0; i < 64; ++i) {
    r = tx.send(p);
    if (r != Result::Success) break;
    ++accepted;
  }
  ASSERT_EQ(r, Result::Eagain);
  const obs::PvarSnapshot rts_mid =
      tx.proto_obs(proto::ProtocolKind::Rdzv).pvars.snapshot() - rts_before;
  // Rollback: only the accepted sends counted an RTS; the bounce left no
  // trace beyond the context-level Eagain tick.
  EXPECT_EQ(rts_mid[obs::Pvar::RdzvRtsSent], static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(tx.obs().pvars.get(obs::Pvar::SendEagain), 1u);

  // Drain and retry the bounced send: it must go through and deliver.
  for (int i = 0; i < 500 && delivered < accepted; ++i) {
    tx.advance();
    rx.advance();
  }
  ASSERT_EQ(delivered, accepted);
  ASSERT_EQ(tx.send(p), Result::Success);
  for (int i = 0; i < 500 && delivered < accepted + 1; ++i) {
    tx.advance();
    rx.advance();
  }
  ASSERT_EQ(delivered, accepted + 1);
  for (const auto& b : bufs) EXPECT_EQ(b, payload);
  // The receiver completed, but the origin's send states retire only when
  // the DONE packets crawl back through the tiny FIFOs.
  for (int i = 0; i < 500 && (tx.has_pending_state() || rx.has_pending_state()); ++i) {
    tx.advance();
    rx.advance();
  }
  EXPECT_FALSE(tx.has_pending_state());
  EXPECT_FALSE(rx.has_pending_state());
}

}  // namespace
}  // namespace pamix::pami
