// Core PAMI types: results, endpoints, dispatch signatures.
//
// PAMI addresses communication by *endpoint* — a (task, context) pair —
// rather than by process. This is the finer-grain addressing the MPI-3
// endpoints proposals pursued: threads can be pinned to contexts, and two
// endpoints communicate independently of traffic on their siblings.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/inline_fn.h"

namespace pamix::pami {

/// PAMI-style status codes. The hot path never throws; callers branch on
/// the result (Eagain = resource temporarily unavailable, retry after
/// advancing the context).
enum class Result {
  Success,
  Eagain,
  Invalid,
  Error,
};

inline const char* to_string(Result r) {
  switch (r) {
    case Result::Success:
      return "Success";
    case Result::Eagain:
      return "Eagain";
    case Result::Invalid:
      return "Invalid";
    case Result::Error:
      return "Error";
  }
  return "?";
}

/// A communication address: task (process) + context offset within it.
struct Endpoint {
  std::int32_t task = 0;
  std::int16_t context = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Completion callback. PAMI's C API passes (context, cookie, result);
/// captures replace the cookie in this C++ rendering. Inline-only storage
/// (core::SmallFn): captures beyond 56 bytes are a compile error, keeping
/// completion objects allocation-free as they move through state tables
/// and queues.
using EventFn = core::SmallFn;

/// Work item posted to a context's lockless work queue. Wider capture
/// budget than EventFn (a work item often carries a small message's worth
/// of state), still fixed: two cache lines per queue slot.
using WorkFn = core::InlineFn<void(), core::kWorkCallableBytes>;

/// Dispatch identifiers are user-chosen small integers, as in PAMI.
using DispatchId = std::uint16_t;

class Context;

/// Receive descriptor filled by a dispatch handler for messages that do
/// not arrive in a single packet ("asynchronous" receives): the handler
/// supplies the landing buffer and a completion callback.
///
/// For rendezvous arrivals the handler may instead *defer*: no data moves
/// until the upper layer later matches the message and calls
/// `Context::complete_deferred_rdzv` with the real landing buffer (this is
/// how MPI handles an RTS that has no posted receive yet — the payload
/// stays on the sender until matched).
struct RecvDescriptor {
  void* buffer = nullptr;
  std::size_t bytes = 0;  // how many bytes the receiver accepts
  EventFn on_complete;
  /// Set by the handler to defer a rendezvous pull. Only honoured for RTS
  /// arrivals; `defer_handle` is filled by the context on return.
  bool defer = false;
  std::uint64_t defer_handle = 0;
};

/// Active-message dispatch handler.
///
/// `header`/`header_bytes`: the send-side header (always fully present).
/// `pipe_data`: non-null with `pipe_bytes == total_bytes` when the whole
/// payload arrived with the first packet ("immediate" delivery); the
/// handler must consume it before returning. Otherwise the handler fills
/// `recv` to receive `total_bytes` asynchronously.
using DispatchFn =
    core::InlineFn<void(Context& ctx, const void* header, std::size_t header_bytes,
                        const void* pipe_data, std::size_t pipe_bytes,
                        std::size_t total_bytes, Endpoint origin, RecvDescriptor* recv),
                   core::kSmallCallableBytes>;

/// Parameters of a two-sided active-message send.
struct SendParams {
  DispatchId dispatch = 0;
  Endpoint dest;
  const void* header = nullptr;
  std::size_t header_bytes = 0;
  const void* data = nullptr;
  std::size_t data_bytes = 0;
  /// Torus hint bits (hw::torus_hint): force the network route's direction
  /// in the flagged dimensions. 0 (the default) routes shortest-path.
  /// Collectives use this to keep tree traffic on its claimed links.
  std::uint16_t hints = 0;
  /// Fired when the source buffer may be reused (payload fully injected).
  EventFn on_local_done;
  /// Fired when the destination has fully received the message (requires
  /// the remote-completion protocol; used by rendezvous).
  EventFn on_remote_done;
};

/// One-sided put parameters. `remote_addr` is a destination-process
/// virtual address (registered with the node's global-VA table / BAT).
struct PutParams {
  Endpoint dest;
  const void* local_addr = nullptr;
  void* remote_addr = nullptr;
  std::size_t bytes = 0;
  EventFn on_local_done;   // source buffer reusable
  EventFn on_remote_done;  // data landed at the target
};

/// One-sided get parameters.
struct GetParams {
  Endpoint dest;
  void* local_addr = nullptr;
  const void* remote_addr = nullptr;
  std::size_t bytes = 0;
  EventFn on_done;  // data landed locally
};

}  // namespace pamix::pami
