#include "obs/pvar.h"

#include <cstdlib>
#include <cstring>

namespace pamix::obs {

const char* pvar_name(Pvar p) {
  switch (p) {
    case Pvar::SendsEager: return "sends.eager";
    case Pvar::SendsRdzv: return "sends.rdzv";
    case Pvar::SendsShm: return "sends.shm";
    case Pvar::SendEagain: return "sends.eagain";
    case Pvar::PacketsInjected: return "mu.packets_injected";
    case Pvar::PacketsReceived: return "mu.packets_received";
    case Pvar::AdvanceCalls: return "advance.calls";
    case Pvar::AdvanceEvents: return "advance.events";
    case Pvar::WorkPosts: return "work.posts";
    case Pvar::WorkOverflowPosts: return "work.overflow_posts";
    case Pvar::WorkItemsDrained: return "work.items_drained";
    case Pvar::MessagesDispatched: return "messages.dispatched";
    case Pvar::RdzvRtsSent: return "rdzv.rts_sent";
    case Pvar::RdzvRtsReceived: return "rdzv.rts_received";
    case Pvar::RdzvPullsStarted: return "rdzv.pulls_started";
    case Pvar::RdzvDone: return "rdzv.done";
    case Pvar::ShmZeroCopyHits: return "shm.zero_copy_hits";
    case Pvar::CommWakeups: return "commthread.wakeups";
    case Pvar::CommSleeps: return "commthread.sleeps";
    case Pvar::CommLockMisses: return "comm.lock_misses";
    case Pvar::CommSpinIters: return "comm.spin_iters";
    case Pvar::CommFastWakes: return "comm.fast_wakes";
    case Pvar::CommSteals: return "comm.steals";
    case Pvar::CommSleepTimeouts: return "comm.sleep_timeouts";
    case Pvar::CommInlineSends: return "comm.inline_sends";
    case Pvar::CollRoundsContributed: return "collnet.rounds_contributed";
    case Pvar::CollRoundsCompleted: return "collnet.rounds_completed";
    case Pvar::CollnetLockContended: return "collnet.lock_contended";
    case Pvar::CollSlices: return "coll.slices";
    case Pvar::CollNetRounds: return "coll.net_rounds";
    case Pvar::CollOverlapBytes: return "coll.overlap_occupancy";
    case Pvar::CollLocalReduceBytes: return "coll.local_reduce_bytes";
    case Pvar::CollSwDeposits: return "coll.sw_deposits";
    case Pvar::CollRectChunks: return "coll.rect_chunks";
    case Pvar::CollRectInflightPeak: return "coll.rect_inflight_peak";
    case Pvar::CollRectFallbacks: return "coll.rect_fallbacks";
    case Pvar::MpiIsends: return "mpi.isends";
    case Pvar::MpiIrecvs: return "mpi.irecvs";
    case Pvar::MpiMatchBinHits: return "mpi.match.bin_hits";
    case Pvar::MpiMatchListScans: return "mpi.match.list_scans";
    case Pvar::MpiMatchWildcardFallbacks: return "mpi.match.wildcard_fallbacks";
    case Pvar::MpiMatchParked: return "mpi.match.parked";
    case Pvar::MpiMatchPoolHits: return "mpi.match.pool_hits";
    case Pvar::MpiMatchPoolMisses: return "mpi.match.pool_misses";
    case Pvar::EpBinds: return "ep.binds";
    case Pvar::EpFastSends: return "ep.fast_sends";
    case Pvar::EpFallbackSends: return "ep.fallback_sends";
    case Pvar::EpShardCollisions: return "ep.shard_collisions";
    case Pvar::ReqCrossThreadReleases: return "req.cross_thread_releases";
    case Pvar::AllocPoolHits: return "alloc.pool_hits";
    case Pvar::AllocPoolMisses: return "alloc.pool_misses";
    case Pvar::AllocHeapFallbacks: return "alloc.heap_fallbacks";
    case Pvar::AmSends: return "am.sends";
    case Pvar::AmCalls: return "am.calls";
    case Pvar::AmReplies: return "am.replies";
    case Pvar::AmDispatches: return "am.dispatches";
    case Pvar::AmAggPackets: return "am.agg_packets";
    case Pvar::AmAggRecords: return "am.agg_records";
    case Pvar::AmAggFlushFull: return "am.agg_flush_full";
    case Pvar::AmAggFlushTimeout: return "am.agg_flush_timeout";
    case Pvar::AmAggFlushExplicit: return "am.agg_flush_explicit";
    case Pvar::AmCreditStalls: return "am.credit_stalls";
    case Pvar::AmCreditsReturned: return "am.credits_returned";
    case Pvar::AmCreditCtlPackets: return "am.credit_ctl_packets";
    case Pvar::AmHellosSent: return "am.hellos_sent";
    case Pvar::AmVersionMismatches: return "am.version_mismatches";
    case Pvar::AmDeferredRuns: return "am.deferred_runs";
    case Pvar::SimEvents: return "sim.events";
    case Pvar::SimPackets: return "sim.packets_delivered";
    case Pvar::SimDeliverRetries: return "sim.deliver_retries";
    case Pvar::SimVirtualNs: return "sim.virtual_ns";
    case Pvar::SimLinkMaxOccupancy: return "sim.link_max_occupancy";
    case Pvar::ConfigEagerLimit: return "config.eager_limit";
    case Pvar::ConfigShmEagerLimit: return "config.shm_eager_limit";
    case Pvar::ConfigMuBatch: return "config.mu_batch";
    case Pvar::ConfigCollSlice: return "config.coll_slice";
    case Pvar::ConfigCollRadix: return "config.coll_radix";
    case Pvar::ConfigRectChunk: return "config.rect_chunk";
    case Pvar::ConfigMpiMatch: return "config.mpi_match";
    case Pvar::ConfigEndpoints: return "config.endpoints";
    case Pvar::ConfigEpFallback: return "config.ep_fallback";
    case Pvar::ConfigAmCredits: return "config.am_credits";
    case Pvar::ConfigAmAggBytes: return "config.am_agg_bytes";
    case Pvar::ConfigAmFlushUs: return "config.am_flush_us";
    case Pvar::ConfigNetBackend: return "config.net_backend";
    case Pvar::ConfigSimSeed: return "config.sim_seed";
    case Pvar::ConfigCommSpinUs: return "config.comm_spin_us";
    case Pvar::Count: break;
  }
  return "?";
}

const char* trace_ev_name(TraceEv ev) {
  switch (ev) {
    case TraceEv::SendEagerBegin: return "send.eager";
    case TraceEv::SendRdzvBegin: return "send.rdzv";
    case TraceEv::SendShmBegin: return "send.shm";
    case TraceEv::SendComplete: return "send.complete";
    case TraceEv::RdzvRts: return "rdzv.rts";
    case TraceEv::RdzvPull: return "rdzv.pull";
    case TraceEv::RdzvDone: return "rdzv.done";
    case TraceEv::AdvanceBatch: return "advance";
    case TraceEv::WorkDrain: return "work.drain";
    case TraceEv::CommSleep: return "commthread.sleep";
    case TraceEv::CommWake: return "commthread.wake";
    case TraceEv::CommSpin: return "commthread.spin";
    case TraceEv::CommFastWake: return "commthread.fast_wake";
    case TraceEv::CommSteal: return "commthread.steal";
    case TraceEv::CollPhase: return "collective.round";
    case TraceEv::CollSliceMath: return "collective.slice_math";
    case TraceEv::CollArm: return "collective.arm";
    case TraceEv::CollCopyOut: return "collective.copy_out";
    case TraceEv::RectChunkRelay: return "collective.rect_chunk_relay";
    case TraceEv::MpiMatch: return "mpi.match";
    case TraceEv::AmDispatch: return "am.dispatch";
    case TraceEv::AmAggFlush: return "am.agg_flush";
    case TraceEv::AmCreditStall: return "am.credit_stall";
    case TraceEv::Count: break;
  }
  return "?";
}

TraceCat trace_ev_cat(TraceEv ev) {
  switch (ev) {
    case TraceEv::SendEagerBegin:
    case TraceEv::SendRdzvBegin:
    case TraceEv::SendShmBegin:
    case TraceEv::SendComplete:
      return kCatSend;
    case TraceEv::RdzvRts:
    case TraceEv::RdzvPull:
    case TraceEv::RdzvDone:
      return kCatRdzv;
    case TraceEv::AdvanceBatch:
      return kCatAdvance;
    case TraceEv::WorkDrain:
      return kCatWork;
    case TraceEv::CommSleep:
    case TraceEv::CommWake:
    case TraceEv::CommSpin:
    case TraceEv::CommFastWake:
    case TraceEv::CommSteal:
      return kCatCommthread;
    case TraceEv::MpiMatch:
      return kCatMpi;
    case TraceEv::AmDispatch:
    case TraceEv::AmAggFlush:
    case TraceEv::AmCreditStall:
      return kCatAm;
    case TraceEv::CollPhase:
    case TraceEv::CollSliceMath:
    case TraceEv::CollArm:
    case TraceEv::CollCopyOut:
    case TraceEv::RectChunkRelay:
    case TraceEv::Count:
      break;
  }
  return kCatCollective;
}

namespace {

bool env_truthy(const char* v) {
  if (v == nullptr) return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0 &&
         std::strcmp(v, "OFF") != 0 && std::strcmp(v, "false") != 0 && v[0] != '\0';
}

std::uint32_t parse_event_mask(const char* v) {
  if (v == nullptr || v[0] == '\0') return ~0u;
  std::uint32_t mask = 0;
  std::string s(v);
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string tok = s.substr(pos, comma - pos);
    if (tok == "send") mask |= kCatSend;
    else if (tok == "rdzv") mask |= kCatRdzv;
    else if (tok == "advance") mask |= kCatAdvance;
    else if (tok == "work") mask |= kCatWork;
    else if (tok == "commthread") mask |= kCatCommthread;
    else if (tok == "collective") mask |= kCatCollective;
    else if (tok == "mpi") mask |= kCatMpi;
    else if (tok == "am") mask |= kCatAm;
    else if (tok == "all") mask = ~0u;
    pos = comma + 1;
  }
  return mask == 0 ? ~0u : mask;
}

}  // namespace

const ObsConfig& ObsConfig::get() {
  static const ObsConfig cfg = [] {
    ObsConfig c;
    c.trace_enabled = env_truthy(std::getenv("PAMIX_OBS"));
    if (const char* f = std::getenv("PAMIX_TRACE_FILE")) c.trace_file = f;
    c.event_mask = parse_event_mask(std::getenv("PAMIX_TRACE_EVENTS"));
    if (const char* cap = std::getenv("PAMIX_TRACE_CAPACITY")) {
      const long n = std::strtol(cap, nullptr, 10);
      if (n > 0) c.ring_capacity = static_cast<std::size_t>(n);
    }
    return c;
  }();
  return cfg;
}

Registry& Registry::instance() {
  // Leaked on purpose: domains must outlive every static-destruction-order
  // hazard (contexts may be torn down after main returns in tests).
  static Registry* r = new Registry();
  return *r;
}

Domain& Registry::create(std::string name, int pid, int tid, bool want_ring) {
  auto d = std::make_unique<Domain>(std::move(name), pid, tid);
  const ObsConfig& cfg = ObsConfig::get();
  if (want_ring && cfg.trace_enabled) {
    d->trace.enable(cfg.ring_capacity, cfg.event_mask);
  }
  std::lock_guard<std::mutex> g(mu_);
  domains_.push_back(std::move(d));
  return *domains_.back();
}

void Registry::for_each(const std::function<void(const Domain&)>& fn) const {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& d : domains_) fn(*d);
}

PvarSnapshot Registry::totals() const {
  PvarSnapshot total;
  for_each([&](const Domain& d) { total += d.pvars.snapshot(); });
  return total;
}

std::size_t Registry::domain_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return domains_.size();
}

}  // namespace pamix::obs
