// Discrete-event simulation core: a time-ordered event queue.
//
// The timing side of this reproduction (the paper's figures at 2048 nodes,
// which no host can run functionally) is driven by a conventional DES: the
// torus model and the collective-network model schedule packet/combine
// events here.  Time is measured in microseconds (double), the unit of
// every latency the paper reports.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pamix::sim {

/// Simulated time in microseconds.
using SimTime = double;

class EventQueue {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now). Events at equal time run
  /// in schedule order (stable), keeping the simulation deterministic.
  void schedule_at(SimTime t, Action fn) {
    heap_.push(Event{t, seq_++, std::move(fn)});
  }

  void schedule_after(SimTime dt, Action fn) { schedule_at(now_ + dt, std::move(fn)); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Time of the earliest pending event. Only valid when !empty(); used by
  /// cooperative drivers to advance the clock one batch at a time.
  SimTime next_time() const { return heap_.top().time; }

  /// Run a single event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // std::priority_queue::top is const; the action must be moved out, so
    // copy the wrapper then pop. Actions are small (captured pointers).
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }

  /// Drain all events. Returns the number executed.
  std::uint64_t run() {
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
  }

  /// Run events with time <= t_end, then set now() = t_end.
  std::uint64_t run_until(SimTime t_end) {
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().time <= t_end) {
      step();
      ++n;
    }
    if (now_ < t_end) now_ = t_end;
    return n;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace pamix::sim
