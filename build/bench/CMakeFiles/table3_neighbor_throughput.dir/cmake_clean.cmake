file(REMOVE_RECURSE
  "CMakeFiles/table3_neighbor_throughput.dir/table3_neighbor_throughput.cpp.o"
  "CMakeFiles/table3_neighbor_throughput.dir/table3_neighbor_throughput.cpp.o.d"
  "table3_neighbor_throughput"
  "table3_neighbor_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_neighbor_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
