file(REMOVE_RECURSE
  "libpamix_models.a"
)
