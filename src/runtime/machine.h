// Machine — the functional multi-node BG/Q machine hosted on one process.
//
// A Machine instantiates `node_count` simulated nodes, each with the full
// per-node hardware complement (messaging unit, wakeup unit, L2 atomic
// domain, global-VA table, hardware-thread map), wires their MUs to the
// functional network, and provides the classroute / global-interrupt
// resources of the partition.  Simulated MPI *tasks* are host threads:
// task t lives on node t/ppn with node-local index t%ppn (the ABCDE-T
// mapping the paper's runs use).
//
// CNK's shared-address-space support maps naturally: all simulated
// processes share the host address space, and the per-node GlobalVaTable
// keeps the explicit register/translate discipline.
//
// Scale guidance: functional machines are for correctness and host-side
// measurement at small scale (tests use <= 32 nodes x <= 8 ppn). The
// paper-scale experiments (2048 nodes) run on the timing simulator.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "hw/classroute.h"
#include "hw/cnk.h"
#include "hw/global_interrupt.h"
#include "hw/l2_atomics.h"
#include "hw/mu.h"
#include "hw/net_backend.h"
#include "hw/torus.h"
#include "hw/wakeup_unit.h"
#include "runtime/collective_engine.h"
#include "runtime/functional_network.h"

namespace pamix::runtime {

class DesNetwork;

struct MachineOptions {
  std::size_t inj_fifo_capacity = 256;
  std::size_t rec_fifo_capacity = 8192;
  /// Transport backend; unset → the PAMIX_NET environment knob
  /// ("functional", the default, or "des"). The effective choice is
  /// exported as the config.net_backend pvar of the "machine" obs domain.
  std::optional<hw::NetBackendKind> backend;
  /// DES-backend knobs; unset → PAMIX_SIM_SEED / PAMIX_SIM_SKEW_PCT.
  std::optional<std::uint64_t> sim_seed;
  std::optional<double> link_skew_pct;
  /// DES clock discipline: true lets progress() advance virtual time when
  /// nothing is due (threaded blocking loops keep moving); cooperative
  /// scenario drivers set false and call backend().advance_time() at
  /// quiescence for deterministic runs.
  bool des_auto_advance = true;
};

/// One simulated compute node.
class Node {
 public:
  Node(int id, hw::NetworkPort* port, const MachineOptions& opt)
      : id_(id), mu_(std::make_unique<hw::MessagingUnit>(id, port, &wakeup_, opt.inj_fifo_capacity,
                                                         opt.rec_fifo_capacity)) {}

  int id() const { return id_; }
  hw::MessagingUnit& mu() { return *mu_; }
  hw::WakeupUnit& wakeup() { return wakeup_; }
  hw::L2AtomicDomain& l2() { return l2_; }
  hw::GlobalVaTable& global_va() { return global_va_; }
  hw::HwThreadMap& hw_threads() { return hw_threads_; }

 private:
  int id_;
  hw::WakeupUnit wakeup_;
  hw::L2AtomicDomain l2_;
  hw::GlobalVaTable global_va_;
  hw::HwThreadMap hw_threads_;
  std::unique_ptr<hw::MessagingUnit> mu_;
};

class Machine {
 public:
  Machine(hw::TorusGeometry geometry, int ppn, MachineOptions options = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const hw::TorusGeometry& geometry() const { return geom_; }
  int ppn() const { return ppn_; }
  int node_count() const { return geom_.node_count(); }
  int task_count() const { return geom_.node_count() * ppn_; }

  int node_of_task(int task) const { return task / ppn_; }
  int local_index_of_task(int task) const { return task % ppn_; }
  int task_of(int node, int local_index) const { return node * ppn_ + local_index; }

  Node& node(int id) { return *nodes_[static_cast<std::size_t>(id)]; }
  Node& node_of(int task) { return node(node_of_task(task)); }
  /// The byte-moving transport. `network()` is the historical name most
  /// call sites use; `backend()` reads better where the time/progress side
  /// of the contract is what matters.
  hw::NetBackend& network() { return *backend_; }
  hw::NetBackend& backend() { return *backend_; }
  const hw::NetBackend& backend() const { return *backend_; }
  /// The DES backend, or nullptr when running functionally.
  DesNetwork* des_network() { return des_; }
  hw::GlobalInterruptNetwork& gi_network() { return gi_; }
  const MachineOptions& options() const { return options_; }

  // --- Classroute + collective-engine slots (16 per partition; 2 system) ---

  /// Program classroute slot `id` over `rect`: builds the spanning tree,
  /// the GI barrier, and the functional combine engine. Overwrites any
  /// previous programming of the slot (PAMI's deoptimize/optimize reuse).
  void program_classroute(int id, const hw::TorusRectangle& rect);
  void clear_classroute(int id);
  bool classroute_programmed(int id) const {
    return routes_[static_cast<std::size_t>(id)] != nullptr;
  }
  const hw::ClassRoute& classroute(int id) const { return *routes_[static_cast<std::size_t>(id)]; }
  CollectiveNetworkEngine& collective_engine(int id) {
    return *engines_[static_cast<std::size_t>(id)];
  }

  /// Run `body(task)` on one host thread per task and join them all.
  /// Any exception escaping a task is rethrown (first one wins) after all
  /// tasks finish or abort.
  void run_spmd(const std::function<void(int task)>& body);

 private:
  hw::TorusGeometry geom_;
  int ppn_;
  MachineOptions options_;
  // Declared before nodes_: the backend is destroyed after the nodes, so
  // in-flight DES events (which hold pooled Bufs) never outlive it.
  std::unique_ptr<hw::NetBackend> backend_;
  DesNetwork* des_ = nullptr;  // backend_ downcast when kind == Des
  std::vector<std::unique_ptr<Node>> nodes_;
  hw::GlobalInterruptNetwork gi_;
  std::vector<std::unique_ptr<hw::ClassRoute>> routes_;
  std::vector<std::unique_ptr<CollectiveNetworkEngine>> engines_;
};

}  // namespace pamix::runtime
