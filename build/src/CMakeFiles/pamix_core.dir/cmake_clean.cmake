file(REMOVE_RECURSE
  "CMakeFiles/pamix_core.dir/core/client.cpp.o"
  "CMakeFiles/pamix_core.dir/core/client.cpp.o.d"
  "CMakeFiles/pamix_core.dir/core/collectives.cpp.o"
  "CMakeFiles/pamix_core.dir/core/collectives.cpp.o.d"
  "CMakeFiles/pamix_core.dir/core/commthread.cpp.o"
  "CMakeFiles/pamix_core.dir/core/commthread.cpp.o.d"
  "CMakeFiles/pamix_core.dir/core/context.cpp.o"
  "CMakeFiles/pamix_core.dir/core/context.cpp.o.d"
  "CMakeFiles/pamix_core.dir/core/geometry.cpp.o"
  "CMakeFiles/pamix_core.dir/core/geometry.cpp.o.d"
  "libpamix_core.a"
  "libpamix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pamix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
