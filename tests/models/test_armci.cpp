#include "models/armci.h"

#include <gtest/gtest.h>

#include <numeric>

#include "runtime/machine.h"

namespace pamix::models {
namespace {

class ArmciTest : public ::testing::Test {
 protected:
  ArmciTest() : machine_(hw::TorusGeometry({2, 2, 1, 1, 1}), 1), world_(machine_, cfg()) {}
  static pami::ClientConfig cfg() {
    pami::ClientConfig c;
    c.name = "armci";
    return c;
  }
  runtime::Machine machine_;
  pami::ClientWorld world_;
};

TEST_F(ArmciTest, MallocSharedAgreesEverywhere) {
  std::vector<std::shared_ptr<GlobalMemory>> mems(4);
  machine_.run_spmd([&](int task) {
    Armci armci(world_, task);
    mems[static_cast<std::size_t>(task)] = armci.malloc_shared(4096);
    armci.barrier();
  });
  for (int t = 1; t < 4; ++t) {
    EXPECT_EQ(mems[0]->base, mems[static_cast<std::size_t>(t)]->base);
  }
}

TEST_F(ArmciTest, PutGetRoundTrip) {
  machine_.run_spmd([&](int task) {
    Armci armci(world_, task);
    auto mem = armci.malloc_shared(1024 * sizeof(std::uint64_t));
    armci.barrier();
    // Everyone writes its task id into slot `task` of the NEXT task's
    // segment, then reads it back from there.
    const int next = (task + 1) % 4;
    std::uint64_t v = 1000 + static_cast<std::uint64_t>(task);
    auto* remote = static_cast<std::uint64_t*>(mem->local(next)) + task;
    armci.put(next, remote, &v, sizeof(v));
    armci.barrier();
    std::uint64_t back = 0;
    armci.get(next, remote, &back, sizeof(back));
    EXPECT_EQ(back, v);
    // And the previous task wrote into OUR segment.
    const int prev = (task + 3) % 4;
    const auto* mine = static_cast<std::uint64_t*>(mem->local(task)) + prev;
    EXPECT_EQ(*mine, 1000 + static_cast<std::uint64_t>(prev));
    armci.barrier();
  });
}

TEST_F(ArmciTest, LargePutUsesRdma) {
  machine_.run_spmd([&](int task) {
    Armci armci(world_, task);
    const std::size_t n = 100000;
    auto mem = armci.malloc_shared(n * sizeof(std::uint64_t));
    armci.barrier();
    if (task == 0) {
      std::vector<std::uint64_t> data(n);
      std::iota(data.begin(), data.end(), 7u);
      armci.put(2, mem->local(2), data.data(), n * sizeof(std::uint64_t));
    }
    armci.barrier();
    if (task == 2) {
      const auto* seg = static_cast<std::uint64_t*>(mem->local(2));
      EXPECT_EQ(seg[0], 7u);
      EXPECT_EQ(seg[n - 1], 7u + n - 1);
    }
    armci.barrier();
  });
}

TEST_F(ArmciTest, ConcurrentAccumulatesAreAtomic) {
  machine_.run_spmd([&](int task) {
    Armci armci(world_, task);
    auto mem = armci.malloc_shared(8 * sizeof(std::int64_t));
    std::memset(mem->local(task), 0, 8 * sizeof(std::int64_t));
    armci.barrier();
    // Every task accumulates into task 0's counters many times.
    constexpr int kOps = 50;
    std::int64_t ones[8];
    for (auto& o : ones) o = 1;
    auto* target = static_cast<std::int64_t*>(mem->local(0));
    for (int i = 0; i < kOps; ++i) {
      armci.accumulate(0, target, ones, 8);
      if (task == 0) armci.advance();  // targets must progress
    }
    armci.barrier();  // implies fence_all
    if (task == 0) {
      for (int i = 0; i < 8; ++i) EXPECT_EQ(target[i], 4 * kOps);
    }
    armci.barrier();
  });
}

TEST_F(ArmciTest, NonblockingPutsOverlap) {
  machine_.run_spmd([&](int task) {
    Armci armci(world_, task);
    const std::size_t n = 256;
    auto mem = armci.malloc_shared(4 * n * sizeof(std::uint32_t));
    armci.barrier();
    // Fire four puts to four different targets, then wait for all.
    std::vector<std::vector<std::uint32_t>> bufs;
    std::vector<Armci::NbHandle> handles;
    for (int t = 0; t < 4; ++t) {
      bufs.emplace_back(n, static_cast<std::uint32_t>(task * 10 + t));
      auto* remote = static_cast<std::uint32_t*>(mem->local(t)) + task * n;
      handles.push_back(armci.nb_put(t, remote, bufs.back().data(),
                                     n * sizeof(std::uint32_t)));
    }
    for (auto& h : handles) armci.wait(h);
    armci.barrier();
    // Verify what everyone wrote into my segment.
    const auto* seg = static_cast<std::uint32_t*>(mem->local(task));
    for (int src = 0; src < 4; ++src) {
      EXPECT_EQ(seg[src * static_cast<int>(n)], static_cast<std::uint32_t>(src * 10 + task));
    }
    armci.barrier();
  });
}

TEST_F(ArmciTest, FenceOrdersAccumulateBeforeGet) {
  machine_.run_spmd([&](int task) {
    Armci armci(world_, task);
    auto mem = armci.malloc_shared(sizeof(std::int64_t));
    auto* counter = static_cast<std::int64_t*>(mem->local(1));
    if (task == 1) *counter = 0;
    armci.barrier();
    if (task == 0) {
      // Accumulate then fence: the subsequent get must observe the add.
      // (Task 1 keeps advancing so the accumulate can execute there.)
      const std::int64_t five = 5;
      armci.accumulate(1, counter, &five, 1);
      armci.fence_all();
      std::int64_t seen = -1;
      armci.get(1, counter, &seen, sizeof(seen));
      EXPECT_EQ(seen, 5);
    } else if (task == 1) {
      // Progress until the fence on task 0 is satisfiable.
      for (int i = 0; i < 20000 && *counter == 0; ++i) armci.advance();
    }
    armci.barrier();
  });
}

}  // namespace
}  // namespace pamix::models
