// MU eager protocol (paper §III-D).
//
// Origin: header + payload are staged into one contiguous stream and
// injected as a memory-FIFO message — the staging copy is what makes the
// source buffer immediately reusable (and is exactly the copy cost the
// eager protocol pays on BG/Q). A sender wanting remote completion sets
// the want-ack flag; the receiver answers with the shared DONE control
// message once the full stream has landed.
//
// Target: single-packet messages dispatch immediately; multi-packet
// streams reassemble through a RecvState slot table keyed by the packed
// (task, context, seq) wire key, honouring the receiver's truncation
// window (accept_bytes). The table is a linear-scanned freelist vector
// rather than a map: the live set is tiny (messages in flight from all
// peers), scans are cheap, and reusing slots keeps the steady-state
// receive path free of per-message node allocations.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "hw/mu.h"
#include "proto/protocol.h"

namespace pamix::proto {

class ProgressEngine;

class EagerProtocol final : public Protocol {
 public:
  EagerProtocol(ProgressEngine& engine, obs::Domain& obs) : engine_(engine), obs_(obs) {}

  const char* name() const override { return "eager"; }
  ProtocolKind kind() const override { return ProtocolKind::Eager; }
  bool has_pending_state() const override { return recv_live_ > 0; }
  obs::Domain& obs() override { return obs_; }

  /// Origin side. `desc` arrives with addressing and identity filled by
  /// the engine; this protocol stages the stream and injects.
  pami::Result send(pami::SendParams& params, hw::MuDescriptor desc, int fifo);

  /// Target side: an eager-flagged memory-FIFO packet (first packet or
  /// continuation of a multi-packet stream).
  void handle_packet(hw::MuPacket&& pkt);

 private:
  /// In-flight multi-packet incoming message.
  struct RecvState {
    std::byte* buffer = nullptr;
    std::size_t accept_bytes = 0;  // truncation point
    std::size_t total_data_bytes = 0;
    std::size_t received = 0;      // stream bytes consumed (incl. header)
    std::size_t header_bytes = 0;
    pami::EventFn on_complete;
  };

  /// One reassembly slot. Slots recycle in place; the vector grows only
  /// to the in-flight high-water mark.
  struct RecvSlot {
    std::uint64_t key = 0;
    bool in_use = false;
    RecvState st;
  };

  void deliver_first_packet(pami::Endpoint origin, pami::DispatchId dispatch,
                            const std::byte* stream, std::size_t stream_bytes,
                            std::size_t header_bytes, std::size_t total_stream_bytes,
                            std::uint64_t key);
  RecvSlot* find_recv(std::uint64_t key);
  RecvSlot& insert_recv(std::uint64_t key);
  void erase_recv(RecvSlot& slot);

  ProgressEngine& engine_;
  obs::Domain& obs_;
  // Reassembly keyed by (origin task, origin context, msg seq) packed.
  std::vector<RecvSlot> recv_states_;
  std::size_t recv_live_ = 0;
};

}  // namespace pamix::proto
