file(REMOVE_RECURSE
  "CMakeFiles/ablate_context_hash.dir/ablate_context_hash.cpp.o"
  "CMakeFiles/ablate_context_hash.dir/ablate_context_hash.cpp.o.d"
  "ablate_context_hash"
  "ablate_context_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_context_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
