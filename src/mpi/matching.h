// MPI matching engine — posted-receive and unexpected-message queues.
//
// The paper's design decision (§IV-A) keeps the receive queue serial under
// one low-overhead L2-atomic mutex because wildcard-correct parallel
// matching is complex.  That single lock is exactly what flattens the
// multi-context message-rate curve, so this engine shards it: matching
// state is split over per-(comm, src) shards whose hash is aligned with
// the context hash of §V.B — (src + comm) mod N — so every arrival-side
// shard is only ever touched from the one context that receives that
// peer's traffic, and contexts stop funnelling through a global mutex.
//
// Within a shard, exact receives and unexpected messages live in O(1)
// hashed bins keyed by (comm, src, tag) plus an intrusive post/arrival
// -order list; nodes come from a per-shard freelist so the steady-state
// match path performs no allocations (mpi.match.pool_hits/misses count
// it).  Wildcards keep the paper's "serialized but cheap" discipline as a
// *fallback*: (src, ANY_TAG) receives ride a per-shard ordered list, and
// ANY_SOURCE receives a single global ordered list that arrivals consult
// only while its outstanding count is nonzero — the bin fast path
// re-enables itself the moment the last wildcard is matched.
// PAMIX_MPI_MATCH=list restores the old single-queue behaviour (one
// shard, pure linear scans) so benches can A/B both in one process.
//
// Ordering: each (communicator, source, destination) pair carries a
// sequence number; arrivals that overtake (possible when Isend handoff
// work items drain out of order under commthread contention) are parked
// until their predecessors arrive, so matching order is exactly MPI's
// non-overtaking order.  Sequence state lives in flat open-addressed
// per-peer tables, one per shard, not std::maps.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/context.h"
#include "core/geometry.h"
#include "core/types.h"
#include "hw/l2_atomics.h"
#include "mpi/mpi.h"
#include "obs/pvar.h"

namespace pamix::mpi {

/// Wire envelope carried as the PAMI header of every MPI message.
/// `ep` / `src_ep` are the destination / source endpoint indices for
/// endpoint-routed traffic (-1 on the hashed path): arrivals with a valid
/// `ep` route straight to that endpoint's lock-free matching shard, and
/// the pair widens the per-peer sequence channel so every
/// (comm, src, src_ep, dst_ep) stream is independently ordered.
struct Envelope {
  std::int32_t comm = 0;
  std::int32_t src_rank = 0;
  std::int32_t tag = 0;
  std::uint32_t seq = 0;
  std::int16_t ep = -1;
  std::int16_t src_ep = -1;
};

/// MPI_Request state.
struct RequestImpl {
  enum class Kind { Send, Recv };
  Kind kind = Kind::Send;
  std::atomic<int> complete{0};
  Status status;
  // Recv-side user buffer.
  void* buffer = nullptr;
  std::size_t capacity = 0;
  // Hashed context this request's completing event lands on (-1 when the
  // channel is unknown, e.g. ANY_SOURCE). With commthreads active, wait()
  // steals progress on exactly this context (paper §V) and leaves the
  // rest to the background pool.
  int steal_ctx = -1;
  // Pool bookkeeping (owned by RequestPool, not reset between uses):
  // intrusive link for the lock-free reclaim stack and the shard the
  // request was acquired from, so a cross-thread release lands home.
  RequestImpl* pool_next = nullptr;
  std::uint32_t pool_shard = 0;

  void reset() {
    complete.store(0, std::memory_order_relaxed);
    status = Status{};
    buffer = nullptr;
    capacity = 0;
    steal_ctx = -1;
  }
  bool done() const { return complete.load(std::memory_order_acquire) != 0; }
  void finish() { complete.store(1, std::memory_order_release); }
};

/// Thread-sharded request allocator (paper: "thread private pools to
/// minimize locking overheads"). Acquire hashes the calling thread to a
/// shard and pops its mutex-guarded freelist; release pushes onto the
/// *home* shard's lock-free Treiber reclaim stack (bounded-retry CAS with
/// cpu_relax), so a request completed on a commthread or a sibling
/// endpoint thread recycles back without taking the acquirer's lock — the
/// same owner/reclaim split core/buffer_pool.h uses. Releases from a
/// thread hashing to a different shard than the acquirer count the
/// req.cross_thread_releases pvar, making endpoint-mode churn observable.
/// The shards live in shared state co-owned by every outstanding request's
/// deleter, so a Request parked in a matcher queue may safely outlive the
/// pool object.
class RequestPool {
 public:
  explicit RequestPool(obs::PvarSet* pvars = nullptr) : state_(std::make_shared<State>()) {
    state_->pvars = pvars;
  }
  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  Request acquire(RequestImpl::Kind kind);
  std::size_t outstanding() const { return state_->live.load(std::memory_order_relaxed); }

 private:
  static constexpr int kShards = 16;
  struct Shard {
    hw::L2AtomicMutex mu;
    std::vector<RequestImpl*> free;
    /// Lock-free reclaim stack (push-only from releasers; acquire steals
    /// the whole chain with one exchange, so there is no ABA window).
    std::atomic<RequestImpl*> reclaim{nullptr};
  };
  struct State {
    ~State() {
      for (Shard& s : shards) {
        for (RequestImpl* p : s.free) delete p;
        RequestImpl* r = s.reclaim.load(std::memory_order_relaxed);
        while (r != nullptr) {
          RequestImpl* next = r->pool_next;
          delete r;
          r = next;
        }
      }
    }
    Shard shards[kShards];
    std::atomic<std::size_t> live{0};
    obs::PvarSet* pvars = nullptr;
  };
  std::shared_ptr<State> state_;
};

/// Per-task communicator handle: shared geometry + task-local bookkeeping.
struct CommImpl {
  std::shared_ptr<pami::Geometry> geometry;
  int my_rank = 0;
  int split_counter = 0;  // deterministic child naming (task-local)

  int id() const { return geometry->id(); }
  int size() const { return static_cast<int>(geometry->size()); }
};

class Matcher {
 public:
  /// Matching structure. `Bins` is the sharded hashed fast path; `List`
  /// is the paper's single serialized ordered queue (one shard, linear
  /// scans), kept runtime-selectable via PAMIX_MPI_MATCH=list|bins so
  /// benches can A/B both paths in-process.
  enum class Mode { List, Bins };

  /// `context_hint` is the owning client's context count. The shard count
  /// is the smallest multiple of it that is >= kMinShards, so the
  /// (src + comm) shard hash refines the (src + comm) context hash and a
  /// shard's arrival side is only touched from one context.
  explicit Matcher(Library library, int context_hint = 1, obs::PvarSet* pvars = nullptr);
  Matcher(Library library, Mode mode, int context_hint = 1, obs::PvarSet* pvars = nullptr);
  ~Matcher();
  Matcher(const Matcher&) = delete;
  Matcher& operator=(const Matcher&) = delete;

  /// An incoming message, abstracted over eager-inline / eager-streaming /
  /// rendezvous and over live vs parked delivery.
  struct Arrival {
    enum class Kind { Inline, Streaming, Rdzv };
    Kind kind = Kind::Inline;
    Envelope env;
    pami::Endpoint origin;
    std::size_t total = 0;
    // Inline: payload bytes (owned once parked/unexpected).
    const std::byte* pipe = nullptr;
    std::size_t pipe_bytes = 0;
    std::vector<std::byte> owned;
    // Streaming: live descriptor to fill (in-order arrivals only)...
    pami::RecvDescriptor* live_recv = nullptr;
    // ...or temp-buffer state for parked arrivals.
    struct TempState {
      std::vector<std::byte> data;
      bool arrived = false;
      Request claimer;
      void* claimer_buf = nullptr;
      std::size_t claimer_cap = 0;
    };
    std::shared_ptr<TempState> temp;
    // Rendezvous: deferred-pull handle on the owning context.
    pami::Context* ctx = nullptr;
    std::uint64_t defer_handle = 0;
  };

  /// Dispatch-side entry: called from the PAMI dispatch handler on the
  /// receiving context's thread. Handles sequencing, matching, parking.
  /// Arrivals with env.ep in [0, endpoint_count()) route to that
  /// endpoint's lock-free shard; out-of-range endpoint indices degrade to
  /// the hashed path (counted as ep.shard_collisions).
  void on_arrival(Arrival&& a);

  /// Post a receive. Matches the unexpected queue first (in arrival
  /// order), else enqueues on the posted queue (in post order).
  void post_recv(Request req, int comm, int src_rank, int tag);

  /// MPI_Iprobe: report (without consuming) the first unexpected message
  /// matching (comm, src, tag). Wildcards allowed. Sees hashed-path
  /// traffic only: endpoint shards are owner-private, so messages routed
  /// to a bound endpoint are invisible here (probe via that endpoint's
  /// own receive ops instead).
  bool probe(int comm, int src_rank, int tag, Status* status);

  std::uint32_t next_send_seq(int comm, int dest_rank);

  // --- Endpoint shards (scalable-endpoints mode) ----------------------------
  // One extra matching shard per endpoint, owned exclusively by the bound
  // thread: no mutex, no atomics on the exact-match path, sequence/epoch
  // counters shard-local. The only shared structure an endpoint ever
  // consults is the global ANY_SOURCE list, and only when `fallback` is on
  // and its count gate is nonzero.

  /// Allocate `count` endpoint shards (plus per-endpoint send-sequence
  /// tables). Bins mode only — under PAMIX_MPI_MATCH=list endpoints are
  /// disabled and this is a no-op. Call once, before any traffic.
  void enable_endpoints(int count, bool fallback);
  int endpoint_count() const { return ep_count_; }
  bool endpoint_fallback() const { return ep_fallback_; }

  /// Point one endpoint shard's counters at its own obs domain so sibling
  /// endpoints never share a counter cache line. Call before traffic.
  void bind_endpoint_pvars(int ep, obs::PvarSet* pvars);

  /// Owner-thread receive post on an endpoint shard. No wildcard source:
  /// ANY_SOURCE receives go through post_recv (the global list) and reach
  /// this shard's backlog via scan_endpoint_for_global.
  void post_recv_ep(int ep, Request req, int comm, int src_rank, int tag);

  /// Owner-thread send sequencing: one independent stream per
  /// (comm, dest_rank, dest_ep) in the endpoint's private table.
  std::uint32_t next_send_seq_ep(int ep, int comm, int dest_rank, int dest_ep);

  /// Owner-thread sweep: marry outstanding global ANY_SOURCE receives to
  /// this endpoint shard's unexpected backlog (oldest wildcard first, then
  /// arrival order). Posted to bound contexts after a wildcard publishes so
  /// endpoint-routed messages can still satisfy MPI_ANY_SOURCE.
  void scan_endpoint_for_global(int ep);

  /// Pre-size every shard freelist (hashed, endpoint, global-wild) to
  /// `nodes_per_shard` nodes without touching the pool_hits/misses
  /// counters — init-time warm-up so steady state reports zero misses.
  void prewarm(int nodes_per_shard);

  Mode mode() const { return mode_; }
  int shard_count() const { return shard_count_; }

  /// ANY_SOURCE receives currently outstanding. While zero, arrivals never
  /// touch the serialized wildcard list — the bin fast path is "re-enabled".
  std::uint32_t outstanding_any_source() const {
    return gw_.count.load(std::memory_order_relaxed);
  }

  // Totals are kept per shard (owner/lock-holder written, relaxed) so
  // endpoint fast paths never tick a shared cache line; accessors sum.
  std::uint64_t unexpected_count() const;
  std::uint64_t posted_matched_count() const;
  std::uint64_t parked_count() const;

 private:
  struct MatchNode;  // defined in matching.cpp

  /// Intrusive doubly-linked list head. A node carries two independent
  /// link pairs: `bin` links chain it into a hash bin (or wildcard list),
  /// `ord` links into the shard-wide post/arrival-order list, so one node
  /// sits in both without allocation.
  struct NodeList {
    MatchNode* head = nullptr;
    MatchNode* tail = nullptr;
  };

  /// Flat open-addressed per-peer table keyed by pack(comm, rank) —
  /// replaces the std::maps that backed expected/send sequence numbers.
  /// Linear probing over a power-of-two slot array; grows at 70% load
  /// (growth is warm-up, not steady state). Entries are never erased:
  /// peers a task has spoken to stay resident, exactly like the maps did.
  class PeerTable {
   public:
    struct Entry {
      std::uint64_t key = kEmptyKey;
      std::uint32_t seq = 0;        // expected (recv side) / next (send side)
      std::uint32_t unexp = 0;      // unexpected messages queued from this peer
      MatchNode* parked = nullptr;  // overtaken arrivals, seq-sorted via ord_next
    };
    static constexpr std::uint64_t kEmptyKey = ~0ull;

    Entry& find_or_insert(std::uint64_t key) {
      if (slots_.empty()) {
        grow(64);
      } else if ((used_ + 1) * 10 >= slots_.size() * 7) {
        grow(slots_.size() * 2);
      }
      for (std::size_t i = index(key);; i = (i + 1) & (slots_.size() - 1)) {
        if (slots_[i].key == key) return slots_[i];
        if (slots_[i].key == kEmptyKey) {
          slots_[i].key = key;
          ++used_;
          return slots_[i];
        }
      }
    }

    Entry* find(std::uint64_t key) {
      if (slots_.empty()) return nullptr;
      for (std::size_t i = index(key);; i = (i + 1) & (slots_.size() - 1)) {
        if (slots_[i].key == key) return &slots_[i];
        if (slots_[i].key == kEmptyKey) return nullptr;
      }
    }

    template <typename F>
    void for_each(F&& f) {
      for (Entry& e : slots_) {
        if (e.key != kEmptyKey) f(e);
      }
    }

   private:
    static std::uint64_t mix(std::uint64_t x) {
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 33;
      x *= 0xc4ceb9fe1a85ec53ull;
      x ^= x >> 33;
      return x;
    }
    std::size_t index(std::uint64_t key) const { return mix(key) & (slots_.size() - 1); }
    void grow(std::size_t n) {
      std::vector<Entry> old = std::move(slots_);
      slots_.assign(n, Entry{});
      used_ = 0;
      for (Entry& e : old) {
        if (e.key != kEmptyKey) find_or_insert(e.key) = e;
      }
    }
    std::vector<Entry> slots_;
    std::size_t used_ = 0;
  };

  static constexpr int kBins = 64;      // hash bins per shard (power of two)
  static constexpr int kMinShards = 16;

  /// One matching shard: everything about the (comm, src) peers that hash
  /// here, serialized by its own cheap mutex — except endpoint shards
  /// (`ep_owned`), which belong to exactly one bound thread and are never
  /// locked: their epoch/stamp order is a plain shard-local counter and
  /// their telemetry lands in the endpoint's own pvar domain.
  struct alignas(64) Shard {
    hw::L2AtomicMutex mu;
    NodeList posted_bins[kBins];  // exact (comm, src, tag) receives
    NodeList posted_all;          // all posted nodes, post order (ord links)
    NodeList wild_local;          // (src, ANY_TAG) receives, post order (bin links)
    std::uint32_t wild_count = 0;
    NodeList unexp_bins[kBins];   // unexpected messages by exact key
    NodeList unexp_all;           // all unexpected nodes, arrival order (ord links)
    PeerTable peers;              // expected seq / parked chain / unexp count
    MatchNode* free_head = nullptr;  // node freelist (chained via bin_next)
    bool ep_owned = false;           // owner-thread shard: no locking, local order
    std::uint64_t local_epoch = 1;   // post order (ep shards; owner-only)
    std::uint64_t local_stamp = 1;   // arrival order (ep shards; owner-only)
    obs::PvarSet* pvars = nullptr;   // ep domain override; null -> matcher's
    // Per-shard totals: single-writer relaxed atomics (readable while the
    // owner runs), summed by the Matcher accessors.
    std::atomic<std::uint64_t> n_unexp{0};
    std::atomic<std::uint64_t> n_matched{0};
    std::atomic<std::uint64_t> n_parked{0};
  };

  struct alignas(64) SendShard {
    hw::L2AtomicMutex mu;
    PeerTable peers;  // only Entry::seq is used: the next send sequence
  };

  /// ANY_SOURCE receives — the paper's serialized-but-cheap ordered list,
  /// shared by all shards. `count` is the gate: arrivals skip this list
  /// entirely (no lock, one relaxed load) while it is zero.
  struct GlobalWild {
    hw::L2AtomicMutex mu;
    NodeList list;  // post order (ord links)
    MatchNode* free_head = nullptr;
    std::atomic<std::uint32_t> count{0};
    std::atomic<std::uint64_t> n_matched{0};  // wildcard claims (under mu)
  };

  std::size_t shard_index(int comm, int rank) const;
  Shard& shard_of(int comm, int rank);
  static std::size_t bin_of(int comm, int src, int tag);
  static std::uint64_t peer_key(int comm, int rank);
  /// Sequence-channel key: peer_key widened with the (src_ep, dst_ep) pair
  /// when the sender stamped endpoint indices, so every endpoint-to-
  /// endpoint stream is independently ordered.
  static std::uint64_t chan_key(int comm, int rank, int src_ep, int dst_ep);
  static bool node_matches(const MatchNode& p, const Envelope& env);

  void on_arrival_ep(Arrival&& a);
  void sequence_and_deliver(Shard& sh, PeerTable::Entry& e, Arrival&& a);
  void park(Shard& sh, PeerTable::Entry& e, Arrival&& a);
  void deliver(Shard& sh, PeerTable::Entry& e, Arrival&& a);
  /// Endpoint-shard global-wildcard arbitration: claim matching wildcards
  /// for the shard's oldest unexpected messages first, then for the live
  /// arrival. Returns true when the arrival was consumed.
  bool claim_global_wild(Shard& sh, Arrival& a);
  void bind_posted(const Request& req, Arrival&& a);
  void store_unexpected(Shard& sh, PeerTable::Entry& e, Arrival&& a);
  void bind_unexpected(Shard& sh, const Request& req, MatchNode* u);
  MatchNode* find_unexpected(Shard& sh, int comm, int src, int tag);
  void take_unexpected(Shard& sh, MatchNode* u);
  bool wildcard_blocked(Shard& sh, const PeerTable::Entry& e, const MatchNode& w,
                        const Envelope& env);

  MatchNode* alloc_node(Shard& sh);
  MatchNode* alloc_node(MatchNode*& free_head, obs::PvarSet* pv);
  void recycle_node(MatchNode*& free_head, MatchNode* n);
  /// Shard-aware counting: endpoint shards tick their own pvar domain so
  /// sibling endpoints never write the same counter line.
  obs::PvarSet* shard_pvars(const Shard& sh) const {
    return sh.pvars != nullptr ? sh.pvars : pvars_;
  }
  void count_sh(const Shard& sh, obs::Pvar p, std::uint64_t n = 1) {
    obs::PvarSet* pv = shard_pvars(sh);
    if (pv != nullptr) pv->add(p, n);
  }
  void count(obs::Pvar p, std::uint64_t n = 1) {
    if (pvars_ != nullptr) pvars_->add(p, n);
  }

  static void push_ord(NodeList& l, MatchNode* n);
  static void unlink_ord(NodeList& l, MatchNode* n);
  static void push_bin(NodeList& l, MatchNode* n);
  static void unlink_bin(NodeList& l, MatchNode* n);

  static void complete_recv(const Request& req, const Envelope& env, std::size_t bytes);

  Library library_;
  Mode mode_;
  int shard_count_ = 1;
  obs::PvarSet* pvars_ = nullptr;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<SendShard[]> send_shards_;
  GlobalWild gw_;
  // Endpoint mode: one owner-private shard + send-sequence table per
  // endpoint, allocated once by enable_endpoints.
  int ep_count_ = 0;
  bool ep_fallback_ = true;
  int prewarm_nodes_ = 0;
  std::unique_ptr<Shard[]> ep_shards_;
  std::unique_ptr<PeerTable[]> ep_send_;
  // Post order (posted receives) and arrival order (unexpected messages)
  // are global for the hashed shards so cross-list candidates compare
  // correctly; the fetch_add happens under the relevant structure's lock.
  // Endpoint shards use their own local_epoch/local_stamp instead — an
  // endpoint never compares order against another shard's nodes.
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> stamp_{1};
};

}  // namespace pamix::mpi
