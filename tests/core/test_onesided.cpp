#include <gtest/gtest.h>

#include <cstring>

#include "core/client.h"
#include "core/context.h"
#include "runtime/machine.h"

namespace pamix::pami {
namespace {

std::vector<std::byte> pattern(std::size_t n, int salt = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i * 7 + salt);
  return v;
}

class OneSided : public ::testing::Test {
 protected:
  OneSided() : machine_(hw::TorusGeometry({2, 1, 1, 1, 1}), 2), world_(machine_, cfg()) {}
  static ClientConfig cfg() {
    ClientConfig c;
    c.contexts_per_task = 1;
    return c;
  }
  Context& ctx(int task) { return world_.client(task).context(0); }
  void advance_all() {
    for (int t = 0; t < machine_.task_count(); ++t) ctx(t).advance();
  }

  runtime::Machine machine_;
  ClientWorld world_;
};

TEST_F(OneSided, PutInterNodeWritesRemoteMemory) {
  const auto data = pattern(10000);
  std::vector<std::byte> target(10000);  // owned by task 2 (node 1)
  bool local = false, remote = false;
  PutParams p;
  p.dest = Endpoint{2, 0};
  p.local_addr = data.data();
  p.remote_addr = target.data();
  p.bytes = data.size();
  p.on_local_done = [&] { local = true; };
  p.on_remote_done = [&] { remote = true; };
  ASSERT_EQ(ctx(0).put(std::move(p)), Result::Success);
  for (int i = 0; i < 200 && !remote; ++i) advance_all();
  EXPECT_TRUE(local);
  EXPECT_TRUE(remote);
  EXPECT_EQ(target, data);
}

TEST_F(OneSided, PutIntraNodeUsesGlobalVa) {
  const auto data = pattern(128, 3);
  std::vector<std::byte> target(128);
  bool remote = false;
  PutParams p;
  p.dest = Endpoint{1, 0};  // same node as task 0
  p.local_addr = data.data();
  p.remote_addr = target.data();
  p.bytes = data.size();
  p.on_remote_done = [&] { remote = true; };
  ASSERT_EQ(ctx(0).put(std::move(p)), Result::Success);
  EXPECT_TRUE(remote);  // completes synchronously through the L2
  EXPECT_EQ(target, data);
}

TEST_F(OneSided, GetInterNodeReadsRemoteMemory) {
  const auto remote_data = pattern(5000, 9);
  std::vector<std::byte> local(5000);
  bool done = false;
  GetParams p;
  p.dest = Endpoint{3, 0};
  p.local_addr = local.data();
  p.remote_addr = remote_data.data();
  p.bytes = remote_data.size();
  p.on_done = [&] { done = true; };
  ASSERT_EQ(ctx(0).get(std::move(p)), Result::Success);
  for (int i = 0; i < 200 && !done; ++i) advance_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(local, remote_data);
}

TEST_F(OneSided, GetIsTrulyOneSided) {
  // The target task never advances: the MU must service the remote get
  // autonomously, exactly as BG/Q hardware does.
  const auto remote_data = pattern(2048, 4);
  std::vector<std::byte> local(2048);
  bool done = false;
  GetParams p;
  p.dest = Endpoint{2, 0};
  p.local_addr = local.data();
  p.remote_addr = remote_data.data();
  p.bytes = remote_data.size();
  p.on_done = [&] { done = true; };
  ASSERT_EQ(ctx(0).get(std::move(p)), Result::Success);
  for (int i = 0; i < 200 && !done; ++i) ctx(0).advance();  // only the origin advances
  EXPECT_TRUE(done);
  EXPECT_EQ(local, remote_data);
}

TEST_F(OneSided, ManyConcurrentPutsAllComplete) {
  constexpr int kOps = 32;
  std::vector<std::vector<std::byte>> data;
  std::vector<std::vector<std::byte>> targets;
  for (int i = 0; i < kOps; ++i) {
    data.push_back(pattern(777, i));
    targets.emplace_back(777);
  }
  int completed = 0;
  for (int i = 0; i < kOps; ++i) {
    PutParams p;
    p.dest = Endpoint{2, 0};
    p.local_addr = data[static_cast<std::size_t>(i)].data();
    p.remote_addr = targets[static_cast<std::size_t>(i)].data();
    p.bytes = 777;
    p.on_remote_done = [&] { ++completed; };
    Result r;
    while ((r = ctx(0).put(p)) == Result::Eagain) advance_all();
    ASSERT_EQ(r, Result::Success);
  }
  for (int i = 0; i < 500 && completed < kOps; ++i) advance_all();
  EXPECT_EQ(completed, kOps);
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(targets[static_cast<std::size_t>(i)], data[static_cast<std::size_t>(i)]);
  }
}

TEST_F(OneSided, ZeroBytePutCompletes) {
  bool remote = false;
  std::byte dummy{};
  PutParams p;
  p.dest = Endpoint{2, 0};
  p.local_addr = &dummy;
  p.remote_addr = &dummy;
  p.bytes = 0;
  p.on_remote_done = [&] { remote = true; };
  ASSERT_EQ(ctx(0).put(std::move(p)), Result::Success);
  for (int i = 0; i < 100 && !remote; ++i) advance_all();
  EXPECT_TRUE(remote);
}

}  // namespace
}  // namespace pamix::pami
