// Functional multicolor rectangle broadcast: real slices relayed down the
// real constructed trees over the PAMI point-to-point stack.
#include <gtest/gtest.h>

#include <numeric>

#include "core/client.h"
#include "core/collectives.h"
#include "runtime/machine.h"

namespace pamix::pami {
namespace {

class RectBcastFunctional : public ::testing::TestWithParam<std::pair<std::array<int, 5>, int>> {
};

TEST_P(RectBcastFunctional, DeliversEverywhere) {
  const auto [dims, ppn] = GetParam();
  runtime::Machine machine(hw::TorusGeometry(dims), ppn);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().world_geometry();
  const std::size_t bytes = 40000;  // not divisible by 10: uneven slices

  machine.run_spmd([&](int task) {
    Context& ctx = world.client(task).context(0);
    std::vector<std::uint8_t> buf(bytes, 0);
    if (*geom->rank_of(task) == 0) {
      for (std::size_t i = 0; i < bytes; ++i) buf[i] = static_cast<std::uint8_t>(i * 7 + 3);
    }
    coll::rectangle_broadcast(ctx, *geom, 0, buf.data(), bytes);
    for (std::size_t i = 0; i < bytes; i += 997) {
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 7 + 3)) << "task " << task;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RectBcastFunctional,
    ::testing::Values(std::make_pair(std::array<int, 5>{2, 2, 1, 1, 1}, 1),
                      std::make_pair(std::array<int, 5>{2, 2, 1, 1, 1}, 2),
                      std::make_pair(std::array<int, 5>{3, 3, 1, 1, 1}, 1),
                      std::make_pair(std::array<int, 5>{2, 2, 2, 1, 1}, 1),
                      std::make_pair(std::array<int, 5>{1, 1, 1, 1, 1}, 4)),
    [](const auto& info) {
      std::string s = "t";
      for (int d : info.param.first) s += std::to_string(d);
      return s + "_ppn" + std::to_string(info.param.second);
    });

TEST(RectBcastFunctionalRoots, NonZeroAndNonMasterRoots) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), 2);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().world_geometry();
  const std::size_t bytes = 8192;
  // Root 5 = node 2, local index 1: NOT its node's master.
  for (std::size_t root : {std::size_t{5}, std::size_t{3}}) {
    machine.run_spmd([&](int task) {
      Context& ctx = world.client(task).context(0);
      std::vector<std::uint32_t> buf(bytes / 4, 0);
      if (*geom->rank_of(task) == root) {
        std::iota(buf.begin(), buf.end(), static_cast<std::uint32_t>(root) * 1000);
      }
      coll::rectangle_broadcast(ctx, *geom, root, buf.data(), bytes);
      ASSERT_EQ(buf.front(), root * 1000);
      ASSERT_EQ(buf.back(), root * 1000 + bytes / 4 - 1);
    });
  }
}

TEST(RectBcastFunctionalSmall, TinyAndEmptyMessages) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), 1);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().world_geometry();
  machine.run_spmd([&](int task) {
    Context& ctx = world.client(task).context(0);
    // Fewer bytes than colors: most slices are empty.
    std::array<std::uint8_t, 3> small{};
    if (*geom->rank_of(task) == 0) small = {9, 8, 7};
    coll::rectangle_broadcast(ctx, *geom, 0, small.data(), small.size());
    EXPECT_EQ(small[0], 9);
    EXPECT_EQ(small[2], 7);
    // Zero bytes: pure synchronization.
    coll::rectangle_broadcast(ctx, *geom, 0, small.data(), 0);
  });
}

TEST(RectBcastFunctionalIrregular, FallsBackForNonRectangles) {
  runtime::Machine machine(hw::TorusGeometry({2, 2, 1, 1, 1}), 1);
  ClientWorld world(machine, ClientConfig{});
  auto geom = world.geometries().get_or_create(5, Topology::list({0, 1, 3}));
  machine.run_spmd([&](int task) {
    if (!geom->rank_of(task).has_value()) return;
    Context& ctx = world.client(task).context(0);
    int v = *geom->rank_of(task) == 0 ? 77 : 0;
    coll::rectangle_broadcast(ctx, *geom, 0, &v, sizeof(v));
    EXPECT_EQ(v, 77);
  });
}

}  // namespace
}  // namespace pamix::pami
