// NetBackend — the pluggable byte-moving transport contract.
//
// `hw::NetworkPort` is the minimal MU-facing surface (transmit one packet).
// A *backend* is a full transport implementation behind it: it owns the
// delivery/time contract the rest of the stack used to assume implicitly.
// Two implementations exist:
//
//   * runtime::FunctionalNetwork — untimed: transmit() routes the packet to
//     the destination MU synchronously (the host memory system is the
//     wire). progress() is a no-op and the virtual clock never moves.
//   * runtime::DesNetwork — timed: transmit() schedules the packet through
//     sim::DesTorus-style per-link contention with the BG/Q cost model;
//     delivery happens when the discrete-event clock reaches the packet's
//     arrival. The proto::ProgressEngine pumps progress() every advance, so
//     no layer above the MU may assume synchronous delivery.
//
// Selection is per-Machine at run time: MachineOptions::backend, defaulted
// from PAMIX_NET=functional|des (exported as the config.net_backend pvar).
#pragma once

#include <cstdint>

#include "hw/mu.h"

namespace pamix::hw {

/// Which backend a Machine moves bytes through.
enum class NetBackendKind : int { Functional = 0, Des = 1 };

class NetBackend : public NetworkPort {
 public:
  ~NetBackend() override = default;

  /// Stable short name ("functional", "des") for diagnostics/telemetry.
  virtual const char* name() const = 0;

  /// True when delivery is clocked: packets handed to transmit() arrive
  /// only after progress()/advance_time() moves the virtual clock past
  /// their simulated arrival time.
  virtual bool timed() const { return false; }

  /// Deliver everything due at the current virtual time; in auto-advance
  /// timed backends this may also move the clock to the next event when
  /// nothing is due (so threaded blocking loops keep making progress).
  /// Pumped by proto::ProgressEngine::advance. Returns events executed.
  virtual std::size_t progress() { return 0; }

  /// Cooperative clock control: jump to the earliest pending event time and
  /// run every event scheduled at it. Returns false when nothing is in
  /// flight. Scenario drivers call this only at software quiescence, which
  /// keeps runs deterministic.
  virtual bool advance_time() { return false; }

  /// Current virtual time (µs). Always 0 for untimed backends.
  virtual double now_us() const { return 0.0; }

  /// Scheduled network events not yet executed (packets in flight plus
  /// pending delivery retries). 0 for untimed backends.
  virtual std::uint64_t in_flight() const { return 0; }

  /// Delivery counters, shared by both backends (tests audit routes and
  /// benches report packet totals through one interface).
  virtual std::uint64_t packets_delivered() const = 0;
  virtual std::uint64_t payload_bytes_delivered() const = 0;

  /// Max packets observed crossing any one directed link (congestion
  /// telemetry; 0 when the backend does not track per-link occupancy).
  virtual std::uint64_t max_link_occupancy() const { return 0; }
};

}  // namespace pamix::hw
