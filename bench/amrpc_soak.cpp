// AM RPC soak — server-style sustained load on the active-message layer
// (src/am/): every endpoint of a 4-task x 2-context world runs an echo
// server AND a windowed RPC client issuing mixed-size calls round-robin
// to all remote endpoints. Reports sustained RPC rate, p50/p99 latency,
// and per-destination fairness, then runs an incast burst (everyone
// hammers endpoint 0 with batched one-way sends) to drive the credit
// window to exhaustion and prove flow control engages (am.credit_stalls)
// while aggregation keeps packet counts below message counts
// (am.agg_packets).
//
// The measured soak phase is strict-alloc gated: with
// PAMIX_BENCH_STRICT_ALLOC set, a software-stack buffer-pool miss in the
// measured phase (or a silent zero in the aggregation/credit-stall
// counters) fails the run — the zero-allocation steady state and the
// flow-control machinery are part of what this bench certifies, not just
// the rate. The simulated MU's packet-staging pools are reported but not
// gated; see the comment at the measured phase.
//
// Smoke override: PAMIX_BENCH_AMRPC_ITERS (RPC completions per endpoint).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "am/engine.h"
#include "bench_util.h"
#include "core/client.h"
#include "core/context.h"
#include "hw/l2_atomics.h"
#include "obs/clock.h"
#include "runtime/machine.h"

namespace {

using namespace pamix;

constexpr int kTasks = 4;
constexpr int kCtxPerTask = 2;
constexpr int kEndpoints = kTasks * kCtxPerTask;
constexpr int kWindow = 16;  // outstanding RPCs per client engine
constexpr std::uint16_t kEcho = 1;
constexpr std::uint16_t kBurst = 2;
constexpr std::size_t kSizes[] = {0, 32, 256, 2048, 16384};
constexpr int kNumSizes = static_cast<int>(sizeof(kSizes) / sizeof(kSizes[0]));
constexpr int kBurstBatch = 256;  // one-way sends issued back-to-back
constexpr int kBurstBatches = 4;

/// Yield when an advance pass over both contexts did no work and the host
/// is oversubscribed (fewer cores than task threads): a waited-for peer
/// is probably not running, and burning the rest of this quantum only
/// delays it. Same discipline as the blocking loops in hw/l2_atomics.h.
void idle_pause(std::size_t work_done) {
  if (work_done == 0 && hw::oversubscribed_hint().load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
}

/// Spin barrier that keeps both of the task's contexts advancing while
/// waiting, so servers keep serving during every rendezvous.
class AdvanceBarrier {
 public:
  void arrive_and_advance(pami::Context& a, pami::Context& b) {
    const int target = kTasks * (static_cast<int>(generation_.load()) + 1);
    if (arrivals_.fetch_add(1) + 1 == target) generation_.fetch_add(1);
    const std::uint32_t gen = static_cast<std::uint32_t>(target / kTasks);
    while (generation_.load(std::memory_order_acquire) < gen) {
      idle_pause(a.advance() + b.advance());
    }
  }

 private:
  std::atomic<int> arrivals_{0};
  std::atomic<std::uint32_t> generation_{0};
};

/// One client endpoint's soak state. The reply callback captures a
/// pointer to this (plus the issue timestamp and destination index), so
/// the capture stays far under the InlineFn budget.
struct ClientState {
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint32_t outstanding = 0;
  bool record = false;
  std::vector<std::uint64_t>* samples = nullptr;   // latency ns, prereserved
  std::vector<std::uint64_t>* per_dest = nullptr;  // completions per endpoint
};

}  // namespace

int main() {
  const int iters = bench::env_iters("PAMIX_BENCH_AMRPC_ITERS", 4000);
  const int warmup = std::max(200, iters / 10);

  bench::header("AM RPC soak: 8 endpoints (4 tasks x 2 contexts), echo servers + "
                "windowed mixed-size clients");
  std::printf("window %d/engine, sizes 0B..16KB, %d warm-up + %d measured "
              "RPCs per endpoint\n",
              kWindow, warmup, iters);

  runtime::Machine machine(hw::TorusGeometry({kTasks, 1, 1, 1, 1}), 1);
  pami::ClientConfig cfg;
  cfg.contexts_per_task = kCtxPerTask;
  pami::ClientWorld world(machine, cfg);

  AdvanceBarrier barrier;
  std::mutex merge_mu;
  std::vector<std::uint64_t> all_samples;
  std::vector<std::uint64_t> dest_counts(kEndpoints, 0);
  std::uint64_t total_errors = 0;
  std::atomic<std::uint64_t> soak_begin_ns{~0ull};
  std::atomic<std::uint64_t> soak_end_ns{0};
  std::atomic<std::uint64_t> burst_received{0};
  bench::PvarPhase measured_phase;  // rebaselined at the soak barrier below
  bench::PvarPhase burst_phase;
  obs::PvarSnapshot soak_delta, incast_delta;
  std::atomic<std::uint64_t> soak_sw_misses{0};

  machine.run_spmd([&](int task) {
    pami::Context& c0 = world.client(task).context(0);
    pami::Context& c1 = world.client(task).context(1);
    am::Engine::Options opts = am::Engine::options_from_env();
    am::Engine e0(c0, opts);
    am::Engine e1(c1, opts);
    am::Engine* engines[kCtxPerTask] = {&e0, &e1};

    for (am::Engine* e : engines) {
      e->register_handler(kEcho, [](am::Engine& eng, const am::AmMsg& m) {
        eng.reply(m, m.data, m.bytes);
      });
      e->register_handler(kBurst, [&burst_received](am::Engine&, const am::AmMsg&) {
        burst_received.fetch_add(1, std::memory_order_relaxed);
      });
    }
    auto advance_both = [&] { idle_pause(c0.advance() + c1.advance()); };

    // Payload large enough for the biggest size class; contents don't matter.
    std::vector<std::byte> payload(kSizes[kNumSizes - 1]);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::byte>(i * 7 + task);
    }

    // Remote endpoints, round-robin targets for both client engines.
    std::vector<pami::Endpoint> dests;
    for (int t = 0; t < kTasks; ++t) {
      if (t == task) continue;
      for (int c = 0; c < kCtxPerTask; ++c) {
        dests.push_back(pami::Endpoint{t, static_cast<std::int16_t>(c)});
      }
    }

    std::vector<std::uint64_t> samples;
    samples.reserve(static_cast<std::size_t>(iters) * kCtxPerTask);
    std::vector<std::uint64_t> per_dest(kEndpoints, 0);
    ClientState cs[kCtxPerTask];
    for (ClientState& s : cs) {
      s.samples = &samples;
      s.per_dest = &per_dest;
    }

    /// Windowed pump: keep up to `window` calls outstanding per engine
    /// until each engine has completed `target` RPCs since reset.
    auto pump = [&](std::uint64_t target, int window) {
      std::uint64_t issued[kCtxPerTask] = {0, 0};
      int rr = task;  // stagger targets so endpoint 0 isn't a hotspot
      for (;;) {
        bool done = true;
        for (int c = 0; c < kCtxPerTask; ++c) {
          ClientState* s = &cs[c];
          while (s->outstanding < static_cast<std::uint32_t>(window) &&
                 issued[c] < target) {
            const pami::Endpoint dest = dests[rr % dests.size()];
            const std::size_t bytes = kSizes[rr % kNumSizes];
            const int dest_idx = dest.task * kCtxPerTask + dest.context;
            ++rr;
            ++issued[c];
            ++s->outstanding;
            const std::uint64_t t0 = obs::now_ns();
            engines[c]->call(
                dest, kEcho, payload.data(), bytes,
                am::ReplyFn([s, t0, dest_idx](pami::Result st, const void*,
                                              std::size_t) {
                  --s->outstanding;
                  ++s->completed;
                  if (st != pami::Result::Success) ++s->errors;
                  if (s->record) {
                    s->samples->push_back(obs::now_ns() - t0);
                    ++(*s->per_dest)[static_cast<std::size_t>(dest_idx)];
                  }
                }));
          }
          if (issued[c] < target || s->outstanding > 0) done = false;
        }
        if (done) break;
        advance_both();
      }
    };

    // --- Warm-up: fill pools, parked FIFOs, slab and call tables -------------
    barrier.arrive_and_advance(c0, c1);
    // Warm-up runs a DEEPER window than the measured soak: pool high-water
    // is set by in-flight buffer demand, which depends on scheduler
    // interleaving, so priming at 2x the measured window makes the
    // measured phase's demand strictly dominated and the strict-alloc
    // gate deterministic.
    pump(static_cast<std::uint64_t>(warmup), 2 * kWindow);
    while (!e0.quiescent() || !e1.quiescent()) advance_both();
    barrier.arrive_and_advance(c0, c1);

    // --- Measured soak -------------------------------------------------------
    // Pool misses split two ways. Software-stack pools (context staging,
    // AM aggregation buffers, parked copies, call slabs) have demand
    // bounded by windows and credits, so after warm-up they must never
    // miss — that is the strict gate. The simulated MU's per-packet
    // staging pools ("nodeN.mu" domains) back the reception-FIFO backlog,
    // which on real hardware is fixed DMA memory; the host model grows
    // them lazily to the backlog high-water, a property of scheduler
    // interleaving rather than of the messaging stack, so their growth is
    // reported but not gated.
    auto sw_pool_misses = [] {
      std::uint64_t n = 0;
      obs::Registry::instance().for_each([&](const obs::Domain& d) {
        if (d.name.find(".mu") == std::string::npos) {
          n += d.pvars.get(obs::Pvar::AllocPoolMisses);
        }
      });
      return n;
    };
    std::uint64_t sw_misses_before = 0;
    if (task == 0) {
      sw_misses_before = sw_pool_misses();
      measured_phase = bench::PvarPhase();
    }
    barrier.arrive_and_advance(c0, c1);
    for (ClientState& s : cs) s.record = true;
    const std::uint64_t t_begin = obs::now_ns();
    pump(static_cast<std::uint64_t>(iters), kWindow);
    while (!e0.quiescent() || !e1.quiescent()) advance_both();
    const std::uint64_t t_end = obs::now_ns();
    for (ClientState& s : cs) s.record = false;
    barrier.arrive_and_advance(c0, c1);
    if (task == 0) {
      soak_delta = measured_phase.delta();
      soak_sw_misses.store(sw_pool_misses() - sw_misses_before);
    }

    // --- Incast burst: everyone floods endpoint {0,0} with one-ways ----------
    if (task == 0) burst_phase = bench::PvarPhase();
    barrier.arrive_and_advance(c0, c1);
    if (task != 0) {
      for (int b = 0; b < kBurstBatches; ++b) {
        for (int i = 0; i < kBurstBatch; ++i) {
          // No advance inside the batch: the 64-credit default window
          // must exhaust and park the tail of every batch.
          e0.send(pami::Endpoint{0, 0}, kBurst, payload.data(), 32);
          e1.send(pami::Endpoint{0, 0}, kBurst, payload.data(), 32);
        }
        while (e0.parked_sends() > 0 || e1.parked_sends() > 0) advance_both();
      }
      e0.flush();
      e1.flush();
      while (!e0.quiescent() || !e1.quiescent()) advance_both();
    } else {
      const std::uint64_t expect = static_cast<std::uint64_t>(kTasks - 1) *
                                   kCtxPerTask * kBurstBatches * kBurstBatch;
      while (burst_received.load(std::memory_order_relaxed) < expect) advance_both();
    }
    barrier.arrive_and_advance(c0, c1);
    if (task == 0) incast_delta = burst_phase.delta();

    // --- Merge ---------------------------------------------------------------
    {
      std::lock_guard<std::mutex> g(merge_mu);
      all_samples.insert(all_samples.end(), samples.begin(), samples.end());
      for (int i = 0; i < kEndpoints; ++i) dest_counts[i] += per_dest[i];
      total_errors += cs[0].errors + cs[1].errors;
      std::uint64_t b = soak_begin_ns.load();
      while (t_begin < b && !soak_begin_ns.compare_exchange_weak(b, t_begin)) {
      }
      std::uint64_t e = soak_end_ns.load();
      while (t_end > e && !soak_end_ns.compare_exchange_weak(e, t_end)) {
      }
    }
    barrier.arrive_and_advance(c0, c1);  // engines stay alive until all merged
  });

  // --- Report ----------------------------------------------------------------
  const std::uint64_t rpcs = all_samples.size();
  const double elapsed_us =
      static_cast<double>(soak_end_ns.load() - soak_begin_ns.load()) / 1000.0;
  const double mrps = static_cast<double>(rpcs) / elapsed_us;
  std::sort(all_samples.begin(), all_samples.end());
  const double p50_us =
      rpcs > 0 ? static_cast<double>(all_samples[rpcs / 2]) / 1000.0 : 0;
  const double p99_us =
      rpcs > 0 ? static_cast<double>(all_samples[rpcs - 1 - rpcs / 100]) / 1000.0 : 0;
  std::uint64_t dmin = ~0ull, dmax = 0;
  for (const std::uint64_t n : dest_counts) {
    dmin = std::min(dmin, n);
    dmax = std::max(dmax, n);
  }
  const double fairness = dmax > 0 ? static_cast<double>(dmin) / dmax : 0;

  bench::columns("metric", "value", "");
  std::printf("%-28s %14.3f\n", "RPC rate (M rpc/s)", mrps);
  std::printf("%-28s %14.3f\n", "message rate (M msg/s)", 2 * mrps);
  std::printf("%-28s %14.2f\n", "p50 latency (us)", p50_us);
  std::printf("%-28s %14.2f\n", "p99 latency (us)", p99_us);
  std::printf("%-28s %14.3f\n", "per-dest fairness (min/max)", fairness);
  std::printf("%-28s %14llu\n", "RPCs completed",
              static_cast<unsigned long long>(rpcs));
  std::printf("%-28s %14llu\n", "reply errors",
              static_cast<unsigned long long>(total_errors));
  const std::uint64_t sw_misses = soak_sw_misses.load();
  const std::uint64_t mu_misses = soak_delta[obs::Pvar::AllocPoolMisses] - sw_misses;
  std::printf("soak:   agg_packets=%llu agg_records=%llu credits_returned=%llu "
              "pool_misses=%llu (mu staging growth %llu, ungated)\n",
              static_cast<unsigned long long>(soak_delta[obs::Pvar::AmAggPackets]),
              static_cast<unsigned long long>(soak_delta[obs::Pvar::AmAggRecords]),
              static_cast<unsigned long long>(soak_delta[obs::Pvar::AmCreditsReturned]),
              static_cast<unsigned long long>(sw_misses),
              static_cast<unsigned long long>(mu_misses));
  std::printf("incast: credit_stalls=%llu ctl_packets=%llu agg_packets=%llu\n",
              static_cast<unsigned long long>(incast_delta[obs::Pvar::AmCreditStalls]),
              static_cast<unsigned long long>(
                  incast_delta[obs::Pvar::AmCreditCtlPackets]),
              static_cast<unsigned long long>(incast_delta[obs::Pvar::AmAggPackets]));

  bench::JsonResult json;
  json.add("amrpc_rate_mrps", mrps);
  json.add("amrpc_rate_mmsgs", 2 * mrps);
  json.add("amrpc_p50_us", p50_us);
  json.add("amrpc_p99_us", p99_us);
  json.add("amrpc_fairness_minmax", fairness);
  json.add("amrpc_rpcs", rpcs);
  json.add("amrpc_errors", total_errors);
  json.add("amrpc_endpoints", static_cast<std::uint64_t>(kEndpoints));
  json.add("amrpc_window", static_cast<std::uint64_t>(kWindow));
  json.add("am.sends", soak_delta[obs::Pvar::AmSends]);
  json.add("am.dispatches", soak_delta[obs::Pvar::AmDispatches]);
  json.add("am.agg_packets", soak_delta[obs::Pvar::AmAggPackets]);
  json.add("am.agg_records", soak_delta[obs::Pvar::AmAggRecords]);
  json.add("am.credits_returned", soak_delta[obs::Pvar::AmCreditsReturned]);
  json.add("am.credit_stalls", incast_delta[obs::Pvar::AmCreditStalls]);
  json.add("am.credit_ctl_packets", incast_delta[obs::Pvar::AmCreditCtlPackets]);
  json.add("alloc.pool_misses", sw_misses);
  json.add("alloc.mu_staging_misses", mu_misses);
  json.add("alloc.pool_hits", soak_delta[obs::Pvar::AllocPoolHits]);
  json.write("BENCH_amrpc.json");

  bench::obs_finish();

  if (total_errors > 0) {
    std::fprintf(stderr, "amrpc_soak: %llu reply errors (expected 0)\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  // CI gates under PAMIX_BENCH_STRICT_ALLOC: the measured soak must stay
  // on pooled buffers, and the layer's two defining mechanisms must have
  // visibly engaged — zero aggregation packets or zero credit stalls
  // means the bench silently stopped exercising them.
  if (std::getenv("PAMIX_BENCH_STRICT_ALLOC") != nullptr) {
    if (sw_misses > 0) {
      std::fprintf(stderr,
                   "amrpc_soak: PAMIX_BENCH_STRICT_ALLOC: %llu software-pool misses "
                   "in the measured soak (expected 0)\n",
                   static_cast<unsigned long long>(sw_misses));
      return 1;
    }
    if (soak_delta[obs::Pvar::AmAggPackets] == 0) {
      std::fprintf(stderr, "amrpc_soak: no aggregation packets in the soak\n");
      return 1;
    }
    if (incast_delta[obs::Pvar::AmCreditStalls] == 0) {
      std::fprintf(stderr, "amrpc_soak: incast produced no credit stalls\n");
      return 1;
    }
  }
  return 0;
}
