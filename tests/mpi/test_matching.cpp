// Direct Matcher unit tests: sequencing (out-of-order parking), posted vs
// unexpected paths across all three arrival kinds, wildcard rules, and the
// request pool.
#include "mpi/matching.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "obs/pvar.h"

namespace pamix::mpi {
namespace {

Matcher::Arrival inline_arrival(int comm, int src, int tag, std::uint32_t seq,
                                const void* data, std::size_t bytes) {
  Matcher::Arrival a;
  a.kind = Matcher::Arrival::Kind::Inline;
  a.env = Envelope{comm, src, tag, seq};
  a.origin = pami::Endpoint{src, 0};
  a.total = bytes;
  a.pipe = static_cast<const std::byte*>(data);
  a.pipe_bytes = bytes;
  return a;
}

TEST(Matcher, PostedThenArrivalCompletes) {
  Matcher m(Library::ThreadOptimized);
  RequestPool pool;
  int buf = 0;
  auto req = pool.acquire(RequestImpl::Kind::Recv);
  req->buffer = &buf;
  req->capacity = sizeof(buf);
  m.post_recv(req, 0, 1, 5);
  const int v = 42;
  m.on_arrival(inline_arrival(0, 1, 5, 0, &v, sizeof(v)));
  EXPECT_TRUE(req->done());
  EXPECT_EQ(buf, 42);
  EXPECT_EQ(req->status.source, 1);
  EXPECT_EQ(req->status.tag, 5);
  EXPECT_EQ(m.posted_matched_count(), 1u);
  EXPECT_EQ(m.unexpected_count(), 0u);
}

TEST(Matcher, ArrivalThenPostedCompletes) {
  Matcher m(Library::ThreadOptimized);
  RequestPool pool;
  const int v = 7;
  m.on_arrival(inline_arrival(0, 2, 3, 0, &v, sizeof(v)));
  EXPECT_EQ(m.unexpected_count(), 1u);
  int buf = 0;
  auto req = pool.acquire(RequestImpl::Kind::Recv);
  req->buffer = &buf;
  req->capacity = sizeof(buf);
  m.post_recv(req, 0, 2, 3);
  EXPECT_TRUE(req->done());
  EXPECT_EQ(buf, 7);
}

TEST(Matcher, OutOfOrderArrivalsAreParkedAndReordered) {
  Matcher m(Library::ThreadOptimized);
  RequestPool pool;
  // Sequence 1 arrives before sequence 0 (commthread overtake).
  const int v1 = 111, v0 = 100;
  m.on_arrival(inline_arrival(0, 4, 9, 1, &v1, sizeof(v1)));
  EXPECT_EQ(m.parked_count(), 1u);
  EXPECT_EQ(m.unexpected_count(), 0u);  // not matchable yet

  int buf_a = 0, buf_b = 0;
  auto ra = pool.acquire(RequestImpl::Kind::Recv);
  ra->buffer = &buf_a;
  ra->capacity = sizeof(buf_a);
  auto rb = pool.acquire(RequestImpl::Kind::Recv);
  rb->buffer = &buf_b;
  rb->capacity = sizeof(buf_b);
  m.post_recv(ra, 0, 4, 9);
  m.post_recv(rb, 0, 4, 9);
  EXPECT_FALSE(ra->done());

  // Seq 0 arrives: both deliver, in MPI order (0 to the first post).
  m.on_arrival(inline_arrival(0, 4, 9, 0, &v0, sizeof(v0)));
  EXPECT_TRUE(ra->done());
  EXPECT_TRUE(rb->done());
  EXPECT_EQ(buf_a, 100);
  EXPECT_EQ(buf_b, 111);
}

TEST(Matcher, SequencesAreIndependentPerSource) {
  Matcher m(Library::ThreadOptimized);
  const int v = 1;
  // Source 1's seq 0 and source 2's seq 0 both deliver immediately.
  m.on_arrival(inline_arrival(0, 1, 0, 0, &v, sizeof(v)));
  m.on_arrival(inline_arrival(0, 2, 0, 0, &v, sizeof(v)));
  EXPECT_EQ(m.unexpected_count(), 2u);
  EXPECT_EQ(m.parked_count(), 0u);
}

TEST(Matcher, SequencesAreIndependentPerCommunicator) {
  Matcher m(Library::ThreadOptimized);
  const int v = 1;
  m.on_arrival(inline_arrival(7, 1, 0, 0, &v, sizeof(v)));
  m.on_arrival(inline_arrival(8, 1, 0, 0, &v, sizeof(v)));
  EXPECT_EQ(m.parked_count(), 0u);
}

TEST(Matcher, WildcardSourcePostedMatchesAnyArrival) {
  Matcher m(Library::ThreadOptimized);
  RequestPool pool;
  int buf = 0;
  auto req = pool.acquire(RequestImpl::Kind::Recv);
  req->buffer = &buf;
  req->capacity = sizeof(buf);
  m.post_recv(req, 0, kAnySource, kAnyTag);
  const int v = 55;
  m.on_arrival(inline_arrival(0, 6, 13, 0, &v, sizeof(v)));
  EXPECT_TRUE(req->done());
  EXPECT_EQ(req->status.source, 6);
  EXPECT_EQ(req->status.tag, 13);
}

TEST(Matcher, PostedQueueSearchedInPostOrder) {
  Matcher m(Library::ThreadOptimized);
  RequestPool pool;
  int buf1 = 0, buf2 = 0;
  auto r1 = pool.acquire(RequestImpl::Kind::Recv);
  r1->buffer = &buf1;
  r1->capacity = sizeof(buf1);
  auto r2 = pool.acquire(RequestImpl::Kind::Recv);
  r2->buffer = &buf2;
  r2->capacity = sizeof(buf2);
  m.post_recv(r1, 0, kAnySource, 1);
  m.post_recv(r2, 0, 3, 1);  // more specific, but posted later
  const int v = 9;
  m.on_arrival(inline_arrival(0, 3, 1, 0, &v, sizeof(v)));
  EXPECT_TRUE(r1->done());   // MPI: first matching posted receive wins
  EXPECT_FALSE(r2->done());
}

TEST(Matcher, TruncationKeepsPrefixAndReportsActualBytes) {
  Matcher m(Library::ThreadOptimized);
  RequestPool pool;
  std::uint8_t buf[4] = {};
  auto req = pool.acquire(RequestImpl::Kind::Recv);
  req->buffer = buf;
  req->capacity = sizeof(buf);
  m.post_recv(req, 0, 1, 0);
  const std::uint8_t v[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  m.on_arrival(inline_arrival(0, 1, 0, 0, v, sizeof(v)));
  EXPECT_TRUE(req->done());
  EXPECT_EQ(req->status.bytes, 4u);
  EXPECT_EQ(buf[3], 4);
}

TEST(Matcher, StreamingUnexpectedClaimedBeforeDataArrives) {
  Matcher m(Library::ThreadOptimized);
  RequestPool pool;
  // A streaming (multi-packet) arrival with a live descriptor, no posted
  // receive: the matcher parks it in a temp buffer.
  pami::RecvDescriptor rd;
  Matcher::Arrival a;
  a.kind = Matcher::Arrival::Kind::Streaming;
  a.env = Envelope{0, 1, 2, 0};
  a.total = 16;
  a.live_recv = &rd;
  m.on_arrival(std::move(a));
  ASSERT_NE(rd.buffer, nullptr);  // temp buffer installed
  ASSERT_EQ(rd.bytes, 16u);

  // The receive posts while the message is still streaming: it claims.
  std::uint8_t buf[16] = {};
  auto req = pool.acquire(RequestImpl::Kind::Recv);
  req->buffer = buf;
  req->capacity = sizeof(buf);
  m.post_recv(req, 0, 1, 2);
  EXPECT_FALSE(req->done());

  // Data lands; the context fires on_complete; the claimer completes.
  for (int i = 0; i < 16; ++i) static_cast<std::uint8_t*>(rd.buffer)[i] = std::uint8_t(i);
  rd.on_complete();
  EXPECT_TRUE(req->done());
  EXPECT_EQ(buf[15], 15);
}

TEST(RequestPoolTest, RecyclesRequests) {
  RequestPool pool;
  RequestImpl* first;
  {
    auto r = pool.acquire(RequestImpl::Kind::Send);
    first = r.get();
    r->finish();
    EXPECT_EQ(pool.outstanding(), 1u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  auto r2 = pool.acquire(RequestImpl::Kind::Recv);
  EXPECT_EQ(r2.get(), first);      // same storage, recycled
  EXPECT_FALSE(r2->done());        // fully reset
  EXPECT_EQ(r2->kind, RequestImpl::Kind::Recv);
}

TEST(MatcherSeq, SendSequencesIncreasePerDestination) {
  Matcher m(Library::ThreadOptimized);
  EXPECT_EQ(m.next_send_seq(0, 1), 0u);
  EXPECT_EQ(m.next_send_seq(0, 1), 1u);
  EXPECT_EQ(m.next_send_seq(0, 2), 0u);  // independent per destination
  EXPECT_EQ(m.next_send_seq(1, 1), 0u);  // independent per communicator
}

TEST(MatcherSeq, PeerTableGrowsPastInitialCapacity) {
  // The flat open-addressed table starts at 64 slots and grows at 70%
  // load; 300 distinct peers force several rehashes on both the send and
  // receive sides without losing any sequence state.
  Matcher m(Library::ThreadOptimized);
  for (int rank = 0; rank < 300; ++rank) {
    EXPECT_EQ(m.next_send_seq(0, rank), 0u);
    EXPECT_EQ(m.next_send_seq(0, rank), 1u);
  }
  for (int rank = 0; rank < 300; ++rank) {
    EXPECT_EQ(m.next_send_seq(0, rank), 2u);  // survived every rehash
  }
  const int v = 1;
  for (int rank = 0; rank < 300; ++rank) {
    m.on_arrival(inline_arrival(0, rank, 0, 0, &v, sizeof(v)));
    m.on_arrival(inline_arrival(0, rank, 0, 1, &v, sizeof(v)));  // in seq
  }
  EXPECT_EQ(m.parked_count(), 0u);
  EXPECT_EQ(m.unexpected_count(), 600u);
}

TEST(MatcherModes, ShardCountRefinesContextHint) {
  // Bins: smallest multiple of the context count >= 16, so the shard hash
  // (src + comm) mod shards refines the context hash (src + comm) mod nctx.
  Matcher bins4(Library::ThreadOptimized, Matcher::Mode::Bins, 4);
  EXPECT_EQ(bins4.mode(), Matcher::Mode::Bins);
  EXPECT_GE(bins4.shard_count(), 16);
  EXPECT_EQ(bins4.shard_count() % 4, 0);
  Matcher bins3(Library::ThreadOptimized, Matcher::Mode::Bins, 3);
  EXPECT_GE(bins3.shard_count(), 16);
  EXPECT_EQ(bins3.shard_count() % 3, 0);
  // List restores the paper's single serialized queue.
  Matcher list(Library::ThreadOptimized, Matcher::Mode::List, 4);
  EXPECT_EQ(list.mode(), Matcher::Mode::List);
  EXPECT_EQ(list.shard_count(), 1);
}

TEST(MatcherModes, BinsCountBinHitsOnBothMatchDirections) {
  obs::PvarSet pvars;
  Matcher m(Library::ThreadOptimized, Matcher::Mode::Bins, 4, &pvars);
  RequestPool pool;
  // Posted exact receive matched by arrival: bin hit on the arrival side.
  int buf = 0;
  auto r1 = pool.acquire(RequestImpl::Kind::Recv);
  r1->buffer = &buf;
  r1->capacity = sizeof(buf);
  m.post_recv(r1, 0, 1, 5);
  const int v = 42;
  m.on_arrival(inline_arrival(0, 1, 5, 0, &v, sizeof(v)));
  EXPECT_TRUE(r1->done());
  EXPECT_EQ(pvars.get(obs::Pvar::MpiMatchBinHits), 1u);
  // Unexpected message claimed by an exact receive: bin hit on the post
  // side. Neither direction walked a list.
  m.on_arrival(inline_arrival(0, 1, 6, 1, &v, sizeof(v)));
  auto r2 = pool.acquire(RequestImpl::Kind::Recv);
  r2->buffer = &buf;
  r2->capacity = sizeof(buf);
  m.post_recv(r2, 0, 1, 6);
  EXPECT_TRUE(r2->done());
  EXPECT_EQ(pvars.get(obs::Pvar::MpiMatchBinHits), 2u);
  EXPECT_EQ(pvars.get(obs::Pvar::MpiMatchListScans), 0u);
  EXPECT_EQ(pvars.get(obs::Pvar::MpiMatchWildcardFallbacks), 0u);
}

TEST(MatcherModes, ListModeScansAndNeverBins) {
  obs::PvarSet pvars;
  Matcher m(Library::ThreadOptimized, Matcher::Mode::List, 4, &pvars);
  RequestPool pool;
  int buf = 0;
  auto req = pool.acquire(RequestImpl::Kind::Recv);
  req->buffer = &buf;
  req->capacity = sizeof(buf);
  m.post_recv(req, 0, 1, 5);
  const int v = 9;
  m.on_arrival(inline_arrival(0, 1, 5, 0, &v, sizeof(v)));
  EXPECT_TRUE(req->done());
  EXPECT_EQ(buf, 9);
  EXPECT_EQ(pvars.get(obs::Pvar::MpiMatchBinHits), 0u);
  EXPECT_GT(pvars.get(obs::Pvar::MpiMatchListScans), 0u);
}

TEST(MatcherModes, AnyTagStaysLocalAnySourceGoesGlobal) {
  obs::PvarSet pvars;
  Matcher m(Library::ThreadOptimized, Matcher::Mode::Bins, 4, &pvars);
  RequestPool pool;
  // (src, ANY_TAG) rides the shard-local wildcard list, not the global one.
  int buf = 0;
  auto rt = pool.acquire(RequestImpl::Kind::Recv);
  rt->buffer = &buf;
  rt->capacity = sizeof(buf);
  m.post_recv(rt, 0, 2, kAnyTag);
  EXPECT_EQ(m.outstanding_any_source(), 0u);
  const int v = 13;
  m.on_arrival(inline_arrival(0, 2, 99, 0, &v, sizeof(v)));
  EXPECT_TRUE(rt->done());
  EXPECT_EQ(rt->status.tag, 99);
  EXPECT_GT(pvars.get(obs::Pvar::MpiMatchWildcardFallbacks), 0u);
  // ANY_SOURCE gates the global list; matching it drops the count back to
  // zero and re-enables the pure bin fast path.
  auto rs = pool.acquire(RequestImpl::Kind::Recv);
  rs->buffer = &buf;
  rs->capacity = sizeof(buf);
  m.post_recv(rs, 0, kAnySource, 7);
  EXPECT_EQ(m.outstanding_any_source(), 1u);
  m.on_arrival(inline_arrival(0, 3, 7, 0, &v, sizeof(v)));
  EXPECT_TRUE(rs->done());
  EXPECT_EQ(rs->status.source, 3);
  EXPECT_EQ(m.outstanding_any_source(), 0u);
  const std::uint64_t fallbacks = pvars.get(obs::Pvar::MpiMatchWildcardFallbacks);
  // With no wildcard outstanding, an exact match is pure bins again.
  auto re = pool.acquire(RequestImpl::Kind::Recv);
  re->buffer = &buf;
  re->capacity = sizeof(buf);
  m.post_recv(re, 0, 3, 8);
  m.on_arrival(inline_arrival(0, 3, 8, 1, &v, sizeof(v)));
  EXPECT_TRUE(re->done());
  EXPECT_EQ(pvars.get(obs::Pvar::MpiMatchWildcardFallbacks), fallbacks);
}

TEST(MatcherModes, ExactPostedBeforeAnySourceWinsByPostOrder) {
  // Cross-list ordering: the exact bin candidate and the global wildcard
  // candidate are compared by post epoch, exactly MPI's first-matching
  // posted receive rule.
  Matcher m(Library::ThreadOptimized, Matcher::Mode::Bins, 4);
  RequestPool pool;
  int exact = -1, wild = -1;
  auto re = pool.acquire(RequestImpl::Kind::Recv);
  re->buffer = &exact;
  re->capacity = sizeof(exact);
  auto rw = pool.acquire(RequestImpl::Kind::Recv);
  rw->buffer = &wild;
  rw->capacity = sizeof(wild);
  m.post_recv(re, 0, 1, 4);          // exact, posted first
  m.post_recv(rw, 0, kAnySource, 4);  // wildcard, posted second
  const int v = 21;
  m.on_arrival(inline_arrival(0, 1, 4, 0, &v, sizeof(v)));
  EXPECT_TRUE(re->done());
  EXPECT_FALSE(rw->done());
  EXPECT_EQ(exact, 21);
  EXPECT_EQ(m.outstanding_any_source(), 1u);  // wildcard still pending
  const int v2 = 22;
  m.on_arrival(inline_arrival(0, 2, 4, 0, &v2, sizeof(v2)));
  EXPECT_TRUE(rw->done());
  EXPECT_EQ(wild, 22);
}

TEST(MatcherModes, AnySourceProbeReportsOldestArrivalAcrossShards) {
  Matcher m(Library::ThreadOptimized, Matcher::Mode::Bins, 4);
  const int v = 1;
  // Sources 1 and 2 hash to different shards; the probe must report the
  // globally oldest unexpected message, not the first shard's.
  m.on_arrival(inline_arrival(0, 1, 5, 0, &v, sizeof(v)));
  m.on_arrival(inline_arrival(0, 2, 5, 0, &v, sizeof(v)));
  Status st;
  ASSERT_TRUE(m.probe(0, kAnySource, 5, &st));
  EXPECT_EQ(st.source, 1);
  EXPECT_EQ(st.tag, 5);
  EXPECT_FALSE(m.probe(0, kAnySource, 6, &st));
}

TEST(RequestPoolTest, CrossThreadReleaseRecyclesOnReleasingThreadsShard) {
  // Satellite: the deleter shards by the *releasing* thread, so a request
  // freed by a commthread is reacquired cheaply by that same thread.
  RequestPool pool;
  RequestImpl* first = nullptr;
  {
    auto r = pool.acquire(RequestImpl::Kind::Send);
    first = r.get();
    std::thread releaser([r = std::move(r)]() mutable { r.reset(); });
    releaser.join();
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  // Reacquiring from the releasing thread's shard returns the same node.
  RequestImpl* again = nullptr;
  std::thread t([&] {
    // Same shard only if this thread's id hashes like the releaser's did;
    // instead release here first so acquire on *this* thread hits it.
    auto r = pool.acquire(RequestImpl::Kind::Recv);
    RequestImpl* p = r.get();
    r.reset();
    auto r2 = pool.acquire(RequestImpl::Kind::Recv);
    again = (r2.get() == p) ? p : nullptr;
  });
  t.join();
  EXPECT_NE(first, nullptr);
  EXPECT_NE(again, nullptr) << "same-thread release/acquire must recycle";
}

TEST(RequestPoolTest, CrossThreadChurnBalances) {
  // Acquire on N producer threads, release on N consumer threads, many
  // rounds: the pool must stay balanced (outstanding returns to zero) and
  // every node stays valid across the handoff.
  RequestPool pool;
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> workers;
  std::atomic<int> acquired{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        auto r = pool.acquire(RequestImpl::Kind::Recv);
        r->finish();
        acquired.fetch_add(1, std::memory_order_relaxed);
        // Hand the request to another thread for release.
        std::thread other([r = std::move(r)]() mutable { r.reset(); });
        other.join();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(acquired.load(), kThreads * kRounds);
  EXPECT_EQ(pool.outstanding(), 0u);
}

}  // namespace
}  // namespace pamix::mpi
