#include "am/engine.h"

#include <cassert>
#include <cstring>

#include "core/client.h"
#include "core/env.h"
#include "obs/clock.h"
#include "runtime/machine.h"

namespace pamix::am {

// ------------------------------------------------------------------ device --

std::size_t AmDevice::poll() { return engine_.poll(); }
bool AmDevice::idle() const { return engine_.idle(); }
bool AmDevice::has_pending_state() const { return engine_.has_pending_state(); }

// ----------------------------------------------------------------- options --

Engine::Options Engine::options_from_env() {
  Options o;
  o.credits = static_cast<std::uint32_t>(
      core::env_int_or("PAMIX_AM_CREDITS", static_cast<int>(o.credits), 1, 1 << 20));
  o.agg_bytes = core::env_size_or("PAMIX_AM_AGG_BYTES", o.agg_bytes);
  o.flush_us = static_cast<std::uint32_t>(
      core::env_int_or("PAMIX_AM_FLUSH_US", static_cast<int>(o.flush_us), 0, 10000000));
  return o;
}

// ----------------------------------------------------------- ctor / dtor ----

Engine::Engine(pami::Context& ctx, Options opts)
    : ctx_(ctx),
      opts_(opts),
      obs_(obs::Registry::instance().create(ctx.obs().name + ".am", ctx.obs().pid,
                                            ctx.obs().tid, /*want_ring=*/false)),
      dev_(*this) {
  // Aggregation buffers are pooled, so the staging size is bounded by the
  // largest class; a size too small to frame even one empty record
  // disables aggregation outright (everything goes direct).
  if (opts_.agg_bytes > core::kBufMaxPooledBytes) opts_.agg_bytes = core::kBufMaxPooledBytes;
  if (opts_.agg_bytes < sizeof(AggHeader) + sizeof(AggRecord)) opts_.agg_bytes = 0;
  agg_capacity_ = opts_.agg_bytes > 0 ? opts_.agg_bytes - sizeof(AggHeader) : 0;
  flush_ns_ = static_cast<std::uint64_t>(opts_.flush_us) * 1000;
  credit_batch_ = opts_.credits / 2 > 0 ? opts_.credits / 2 : 1;

  obs_.pvars.add(obs::Pvar::ConfigAmCredits, opts_.credits);
  obs_.pvars.add(obs::Pvar::ConfigAmAggBytes, opts_.agg_bytes);
  obs_.pvars.add(obs::Pvar::ConfigAmFlushUs, opts_.flush_us);

  pami::ClientWorld& world = ctx_.client().world();
  ctxs_per_task_ = world.config().contexts_per_task;
  peers_.resize(static_cast<std::size_t>(world.task_count()) *
                static_cast<std::size_t>(ctxs_per_task_));
  for (Peer& p : peers_) p.credits = opts_.credits;

  base_ = opts_.dispatch_base;
  assert(static_cast<std::size_t>(base_) + kDispatchSlots <= (1u << 12) &&
         "AM dispatch IDs exceed the context dispatch table");

  // base+0: one message or reply. Single-packet arrivals deliver
  // immediately; larger ones land in a pooled slab buffer first.
  ctx_.set_dispatch(
      static_cast<pami::DispatchId>(base_ + 0),
      [this](pami::Context&, const void* header, std::size_t, const void* pipe,
             std::size_t, std::size_t total, pami::Endpoint origin,
             pami::RecvDescriptor* rd) {
        MsgHeader h;
        std::memcpy(&h, header, sizeof h);
        if (rd == nullptr) {
          on_msg(h, origin, pipe, total);
          return;
        }
        const std::uint32_t slab = slab_put(ctx_.stage_pool().acquire(total));
        rd->buffer = slab_[slab].data();
        rd->bytes = total;
        rd->on_complete = [this, h, origin, slab, total] {
          on_msg(h, origin, slab_[slab].data(), total);
          slab_release(slab);
        };
      });
  // base+1: an aggregation packet of framed records.
  ctx_.set_dispatch(
      static_cast<pami::DispatchId>(base_ + 1),
      [this](pami::Context&, const void* header, std::size_t, const void* pipe,
             std::size_t, std::size_t total, pami::Endpoint origin,
             pami::RecvDescriptor* rd) {
        AggHeader h;
        std::memcpy(&h, header, sizeof h);
        if (rd == nullptr) {
          on_agg(h, origin, pipe, total);
          return;
        }
        const std::uint32_t slab = slab_put(ctx_.stage_pool().acquire(total));
        rd->buffer = slab_[slab].data();
        rd->bytes = total;
        rd->on_complete = [this, h, origin, slab, total] {
          on_agg(h, origin, slab_[slab].data(), total);
          slab_release(slab);
        };
      });
  // base+2: control (credit return / hello). Header-only, so always a
  // single-packet immediate delivery.
  ctx_.set_dispatch(
      static_cast<pami::DispatchId>(base_ + 2),
      [this](pami::Context&, const void* header, std::size_t, const void*, std::size_t,
             std::size_t, pami::Endpoint origin, pami::RecvDescriptor*) {
        CtlHeader h;
        std::memcpy(&h, header, sizeof h);
        on_ctl(h, origin);
      });

  ctx_.add_progress_device(&dev_);
}

Engine::~Engine() {
  ctx_.remove_progress_device(&dev_);
  for (int i = 0; i < kDispatchSlots; ++i) {
    ctx_.set_dispatch(static_cast<pami::DispatchId>(base_ + i), pami::DispatchFn{});
  }
}

// --------------------------------------------------------------- send path --

pami::Result Engine::send(pami::Endpoint dest, std::uint16_t handler, const void* data,
                          std::size_t bytes) {
  return enqueue(dest, handler, 0, 0, data, bytes);
}

pami::Result Engine::call(pami::Endpoint dest, std::uint16_t handler, const void* data,
                          std::size_t bytes, ReplyFn on_reply) {
  const std::uint32_t id = alloc_call(std::move(on_reply));
  if (id == 0) return pami::Result::Eagain;
  obs_.pvars.add(obs::Pvar::AmCalls);
  return enqueue(dest, handler, id, 0, data, bytes);
}

pami::Result Engine::call(pami::Endpoint dest, std::uint16_t handler, const void* data,
                          std::size_t bytes, Future& future) {
  future.ready_ = false;
  future.status_ = pami::Result::Success;
  future.buf_.reset();
  Future* f = &future;
  return call(dest, handler, data, bytes,
              ReplyFn([this, f](pami::Result st, const void* d, std::size_t n) {
                f->status_ = st;
                f->buf_ = ctx_.stage_pool().acquire_copy(d, n);
                f->ready_ = true;
              }));
}

pami::Result Engine::reply(const AmMsg& msg, const void* data, std::size_t bytes,
                           bool error) {
  if (msg.call_id == 0) return pami::Result::Invalid;
  obs_.pvars.add(obs::Pvar::AmReplies);
  return enqueue(msg.origin, msg.handler, msg.call_id,
                 static_cast<std::uint16_t>(kMsgReply | (error ? kMsgError : 0)), data,
                 bytes);
}

pami::Result Engine::enqueue(pami::Endpoint dest, std::uint16_t handler,
                             std::uint32_t call_id, std::uint16_t flags,
                             const void* data, std::size_t bytes) {
  const std::size_t idx = peer_index(dest);
  assert(idx < peers_.size() && "destination endpoint out of range");
  Peer& p = peers_[idx];
  p.hello_announced = true;  // every outgoing AM header carries table_version
  p.hello_due = false;       // ...so a pending hello becomes redundant
  obs_.pvars.add(obs::Pvar::AmSends);

  const bool reply = (flags & kMsgReply) != 0;
  const std::uint16_t version = reply ? 0 : handlers_.version_of(handler);
  const EntryKind kind = (agg_capacity_ > 0 && agg_record_bytes(bytes) <= agg_capacity_)
                             ? EntryKind::Record
                             : EntryKind::Direct;

  // Park behind earlier parked sends (per-peer FIFO order) or at zero
  // credits. Parking is side-effect-free: credits are consumed at drain.
  if (p.q_live() > 0 || (!reply && p.credits == 0)) {
    if (!reply && p.credits == 0) {
      obs_.pvars.add(obs::Pvar::AmCreditStalls);
      ctx_.obs().trace.record(obs::TraceEv::AmCreditStall,
                              static_cast<std::uint32_t>(idx));
    }
    const std::uint32_t slab =
        bytes > 0 ? slab_put(ctx_.stage_pool().acquire_copy(data, bytes)) : kNoSlab;
    park(p, idx, kind, handler, version, call_id, flags, slab, bytes);
    return pami::Result::Success;
  }

  if (kind == EntryKind::Record) {
    if (!agg_ensure_room(p, idx, agg_record_bytes(bytes))) {
      // Buffer full and the flush bounced off a saturated FIFO: park.
      const std::uint32_t slab =
          bytes > 0 ? slab_put(ctx_.stage_pool().acquire_copy(data, bytes)) : kNoSlab;
      park(p, idx, kind, handler, version, call_id, flags, slab, bytes);
      return pami::Result::Success;
    }
    if (!reply) --p.credits;
    agg_append(p, idx, handler, version, call_id, flags, data, bytes);
    return pami::Result::Success;
  }

  // Direct send: flush staged records first so per-peer order holds.
  if (p.agg_records > 0 && !flush_peer(p, idx, FlushWhy::Explicit)) {
    const std::uint32_t slab =
        bytes > 0 ? slab_put(ctx_.stage_pool().acquire_copy(data, bytes)) : kNoSlab;
    park(p, idx, kind, handler, version, call_id, flags, slab, bytes);
    return pami::Result::Success;
  }
  // Rendezvous/zero-copy delivery reads the source after we return, so
  // those sizes stage into a slab buffer up front; eager/shm-inline sizes
  // go straight from the caller's buffer (the protocol stages its own copy).
  std::uint32_t slab = kNoSlab;
  const void* src = data;
  if (bytes > 0 && needs_copy(dest, bytes)) {
    slab = slab_put(ctx_.stage_pool().acquire_copy(data, bytes));
    src = slab_[slab].data();
  }
  if (send_direct(p, idx, handler, version, call_id, flags, src, bytes, slab) !=
      pami::Result::Success) {
    if (slab == kNoSlab && bytes > 0) {
      slab = slab_put(ctx_.stage_pool().acquire_copy(data, bytes));
    }
    park(p, idx, kind, handler, version, call_id, flags, slab, bytes);
    return pami::Result::Success;
  }
  if (!reply) --p.credits;
  return pami::Result::Success;
}

void Engine::park(Peer& p, std::size_t idx, EntryKind kind, std::uint16_t handler,
                  std::uint16_t version, std::uint32_t call_id, std::uint16_t flags,
                  std::uint32_t slab, std::size_t bytes) {
  Parked e;
  e.kind = kind;
  e.handler = handler;
  e.version = version;
  e.flags = flags;
  e.call_id = call_id;
  e.slab = slab;
  e.bytes = static_cast<std::uint32_t>(bytes);
  p.q.push_back(e);
  list_add(parked_list_, p.in_parked_list, idx);
}

std::size_t Engine::drain_peer(std::size_t idx) {
  Peer& p = peers_[idx];
  std::size_t drained = 0;
  while (p.q_head < p.q.size()) {
    Parked& e = p.q[p.q_head];
    const bool reply = (e.flags & kMsgReply) != 0;
    if (!reply && p.credits == 0) break;
    if (e.kind == EntryKind::Record) {
      if (!agg_ensure_room(p, idx, agg_record_bytes(e.bytes))) break;
      agg_append(p, idx, e.handler, e.version, e.call_id, e.flags,
                 e.slab == kNoSlab ? nullptr : slab_[e.slab].data(), e.bytes);
      if (e.slab != kNoSlab) slab_release(e.slab);
      if (!reply) --p.credits;
    } else {
      if (p.agg_records > 0 && !flush_peer(p, idx, FlushWhy::Explicit)) break;
      const void* src = e.slab == kNoSlab ? nullptr : slab_[e.slab].data();
      if (send_direct(p, idx, e.handler, e.version, e.call_id, e.flags, src, e.bytes,
                      e.slab) != pami::Result::Success) {
        break;  // entry (and its slab payload) stays parked for the next poll
      }
      if (!reply) --p.credits;
    }
    ++p.q_head;
    ++drained;
  }
  if (p.q_head == p.q.size()) {
    p.q.clear();
    p.q_head = 0;
  }
  return drained;
}

bool Engine::agg_ensure_room(Peer& p, std::size_t idx, std::size_t need) {
  if (p.agg_records > 0 && p.agg_used + need > agg_capacity_) {
    return flush_peer(p, idx, FlushWhy::Full);
  }
  return true;
}

void Engine::agg_append(Peer& p, std::size_t idx, std::uint16_t handler,
                        std::uint16_t version, std::uint32_t call_id,
                        std::uint16_t flags, const void* data, std::size_t bytes) {
  if (p.agg_records == 0) {
    // The buffer survives eager flushes (the protocol stages its own
    // copy) and only needs reacquiring after a slab handoff.
    if (p.agg.capacity() < agg_capacity_) p.agg = ctx_.stage_pool().acquire(agg_capacity_);
    p.agg_used = 0;
    p.agg_oldest_ns = obs::now_ns();
    list_add(agg_list_, p.in_agg_list, idx);
  }
  AggRecord r;
  r.handler = handler;
  r.version = version;
  r.call_id = call_id;
  r.bytes = static_cast<std::uint32_t>(bytes);
  r.flags = flags;
  std::byte* dst = p.agg.data() + p.agg_used;
  std::memcpy(dst, &r, sizeof r);
  if (bytes > 0) std::memcpy(dst + sizeof r, data, bytes);
  p.agg_used += agg_record_bytes(bytes);
  ++p.agg_records;
}

bool Engine::flush_peer(Peer& p, std::size_t idx, FlushWhy why) {
  if (p.agg_records == 0) return true;
  const pami::Endpoint dest = peer_endpoint(idx);
  AggHeader h;
  h.count = p.agg_records;
  h.credits = take_owed(p);
  h.table_version = handlers_.table_version();

  pami::SendParams sp;
  sp.dispatch = static_cast<pami::DispatchId>(base_ + 1);
  sp.dest = dest;
  sp.header = &h;
  sp.header_bytes = sizeof h;
  sp.data_bytes = p.agg_used;

  std::uint32_t slab = kNoSlab;
  if (needs_copy(dest, p.agg_used)) {
    // Rendezvous/zero-copy delivery reads the buffer after we return:
    // hand it to the slab and free it on local completion.
    slab = slab_put(std::move(p.agg));
    sp.data = slab_[slab].data();
    sp.on_local_done = [this, slab] { slab_release(slab); };
  } else {
    sp.data = p.agg.data();
  }

  const std::uint16_t records = p.agg_records;
  if (ctx_.send(sp) != pami::Result::Success) {
    restore_owed(p, h.credits);
    if (slab != kNoSlab) p.agg = slab_take(slab);
    return false;
  }
  if (h.credits > 0) obs_.pvars.add(obs::Pvar::AmCreditsReturned, h.credits);
  obs_.pvars.add(obs::Pvar::AmAggPackets);
  obs_.pvars.add(obs::Pvar::AmAggRecords, records);
  switch (why) {
    case FlushWhy::Full: obs_.pvars.add(obs::Pvar::AmAggFlushFull); break;
    case FlushWhy::Timeout: obs_.pvars.add(obs::Pvar::AmAggFlushTimeout); break;
    case FlushWhy::Explicit: obs_.pvars.add(obs::Pvar::AmAggFlushExplicit); break;
  }
  ctx_.obs().trace.record(obs::TraceEv::AmAggFlush, records);
  p.agg_used = 0;
  p.agg_records = 0;
  return true;
}

pami::Result Engine::send_direct(Peer& p, std::size_t idx, std::uint16_t handler,
                                 std::uint16_t version, std::uint32_t call_id,
                                 std::uint16_t flags, const void* data,
                                 std::size_t bytes, std::uint32_t slab) {
  MsgHeader h;
  h.handler = handler;
  h.version = version;
  h.call_id = call_id;
  h.credits = take_owed(p);
  h.flags = flags;
  h.table_version = handlers_.table_version();

  pami::SendParams sp;
  sp.dispatch = static_cast<pami::DispatchId>(base_ + 0);
  sp.dest = peer_endpoint(idx);
  sp.header = &h;
  sp.header_bytes = sizeof h;
  sp.data = data;
  sp.data_bytes = bytes;
  if (slab != kNoSlab) {
    sp.on_local_done = [this, slab] { slab_release(slab); };
  }
  if (ctx_.send(sp) != pami::Result::Success) {
    restore_owed(p, h.credits);
    return pami::Result::Eagain;
  }
  if (h.credits > 0) obs_.pvars.add(obs::Pvar::AmCreditsReturned, h.credits);
  return pami::Result::Success;
}

bool Engine::send_ctl(Peer& p, std::size_t idx) {
  const bool hello = p.hello_due;
  const std::uint16_t creds = take_owed(p);
  if (!hello && creds == 0) return true;  // piggybacks beat us to it
  CtlHeader h;
  h.credits = creds;
  h.flags = hello ? kCtlHello : 0;
  h.table_version = handlers_.table_version();

  pami::SendParams sp;
  sp.dispatch = static_cast<pami::DispatchId>(base_ + 2);
  sp.dest = peer_endpoint(idx);
  sp.header = &h;
  sp.header_bytes = sizeof h;
  if (ctx_.send(sp) != pami::Result::Success) {
    restore_owed(p, creds);
    return false;
  }
  if (hello) {
    p.hello_due = false;
    p.hello_announced = true;
    obs_.pvars.add(obs::Pvar::AmHellosSent);
  }
  obs_.pvars.add(obs::Pvar::AmCreditCtlPackets);
  if (creds > 0) obs_.pvars.add(obs::Pvar::AmCreditsReturned, creds);
  return true;
}

bool Engine::needs_copy(pami::Endpoint dest, std::size_t bytes) const {
  const pami::ClientConfig& cfg = ctx_.client().world().config();
  runtime::Machine& m = ctx_.client().machine();
  const bool same_node =
      m.node_of_task(dest.task) == m.node_of_task(ctx_.client().task());
  return same_node ? bytes > cfg.shm_eager_limit : bytes > cfg.eager_limit;
}

// ------------------------------------------------------------ receive path --

void Engine::on_msg(const MsgHeader& h, pami::Endpoint origin, const void* data,
                    std::size_t bytes) {
  const std::size_t idx = peer_index(origin);
  Peer& p = peers_[idx];
  note_peer_version(p, idx, h.table_version);
  if (h.credits > 0) credit_arrival(p, h.credits);
  if (h.flags & kMsgReply) {
    complete_call(h.call_id,
                  (h.flags & kMsgError) ? pami::Result::Error : pami::Result::Success,
                  data, bytes);
    return;
  }
  deliver(idx, origin, h.handler, h.version, h.call_id, data, bytes);
}

void Engine::on_agg(const AggHeader& h, pami::Endpoint origin, const void* data,
                    std::size_t bytes) {
  const std::size_t idx = peer_index(origin);
  Peer& p = peers_[idx];
  note_peer_version(p, idx, h.table_version);
  if (h.credits > 0) credit_arrival(p, h.credits);
  const std::byte* cur = static_cast<const std::byte*>(data);
  [[maybe_unused]] const std::byte* end = cur + bytes;
  for (std::uint16_t i = 0; i < h.count; ++i) {
    AggRecord r;
    assert(cur + sizeof r <= end && "malformed aggregation packet");
    std::memcpy(&r, cur, sizeof r);
    const void* payload = r.bytes > 0 ? cur + sizeof r : nullptr;
    cur += agg_record_bytes(r.bytes);
    if (r.flags & kMsgReply) {
      complete_call(r.call_id,
                    (r.flags & kMsgError) ? pami::Result::Error : pami::Result::Success,
                    payload, r.bytes);
    } else {
      deliver(idx, origin, r.handler, r.version, r.call_id, payload, r.bytes);
    }
  }
}

void Engine::on_ctl(const CtlHeader& h, pami::Endpoint origin) {
  const std::size_t idx = peer_index(origin);
  Peer& p = peers_[idx];
  note_peer_version(p, idx, h.table_version);
  if (h.credits > 0) credit_arrival(p, h.credits);
}

void Engine::deliver(std::size_t idx, pami::Endpoint origin, std::uint16_t handler,
                     std::uint16_t version, std::uint32_t call_id, const void* data,
                     std::size_t bytes) {
  obs_.pvars.add(obs::Pvar::AmDispatches);
  HandlerTable::Slot* s = handlers_.lookup(handler);
  if (s == nullptr || s->version != version) {
    // Registration asymmetry: never run a mismatched handler. Callers
    // expecting a reply get an error completion instead of a hang.
    obs_.pvars.add(obs::Pvar::AmVersionMismatches);
    // Grant before the error reply so the reply piggybacks this credit.
    grant_credit(idx);
    if (call_id != 0) {
      enqueue(origin, handler, call_id,
              static_cast<std::uint16_t>(kMsgReply | kMsgError), nullptr, 0);
    }
    return;
  }
  if (s->mode == ExecMode::Inline) {
    // Grant before the handler runs: an inline handler completes
    // synchronously, and granting first lets a reply it issues carry the
    // credit for the very message it answers — the common RPC pattern
    // then needs no credit-return control traffic at all.
    grant_credit(idx);
    obs::Domain& tr = ctx_.obs();
    const bool tracing = tr.trace.enabled();
    const std::uint64_t t0 = tracing ? obs::now_ns() : 0;
    AmMsg m{ctx_, origin, data, bytes, call_id, handler};
    s->fn(*this, m);
    if (tracing) {
      tr.trace.record_span(obs::TraceEv::AmDispatch, t0,
                           static_cast<std::uint32_t>(bytes));
    }
    return;
  }
  // Deferred: copy the payload (its backing packet/slab is recycled when
  // this dispatch returns) and run the handler from the work queue. The
  // credit returns only after the handler has actually run, so deferral
  // backpressure reaches the sender.
  const std::uint32_t slab =
      bytes > 0 ? slab_put(ctx_.stage_pool().acquire_copy(data, bytes)) : kNoSlab;
  ctx_.post([this, origin, handler, call_id, slab, bytes] {
    obs_.pvars.add(obs::Pvar::AmDeferredRuns);
    AmMsg m{ctx_, origin, slab == kNoSlab ? nullptr : slab_[slab].data(), bytes,
            call_id, handler};
    if (HandlerTable::Slot* s2 = handlers_.lookup(handler)) s2->fn(*this, m);
    if (slab != kNoSlab) slab_release(slab);
    grant_credit(peer_index(origin));
  });
}

void Engine::grant_credit(std::size_t idx) {
  Peer& p = peers_[idx];
  ++p.owed;
  if (p.owed >= credit_batch_) list_add(ctl_list_, p.in_ctl_list, idx);
}

void Engine::credit_arrival(Peer& p, std::uint32_t n) {
  // Parked sends drain from the device poll later in this same advance
  // pass (the AmDevice sits behind the MU/shm devices in drain order).
  p.credits += n;
}

void Engine::note_peer_version(Peer& p, std::size_t idx, std::uint32_t table_version) {
  if (table_version > p.table_version_seen) p.table_version_seen = table_version;
  if (!p.hello_announced && !p.hello_due) {
    // Inbound-first contact: announce our table version back so a pure
    // server side still completes the handshake.
    p.hello_due = true;
    list_add(ctl_list_, p.in_ctl_list, idx);
  }
}

// ------------------------------------------------------------------- calls --

std::uint32_t Engine::alloc_call(ReplyFn fn) {
  std::uint32_t idx;
  if (!call_free_.empty()) {
    idx = call_free_.back();
    call_free_.pop_back();
  } else {
    if (calls_.size() >= 0xFFFF) return 0;  // correlation space exhausted
    idx = static_cast<std::uint32_t>(calls_.size());
    calls_.emplace_back();
  }
  CallSlot& s = calls_[idx];
  s.fn = std::move(fn);
  s.in_use = true;
  ++calls_live_;
  return ((idx + 1) << 16) | s.gen;
}

void Engine::free_call(std::uint32_t id) {
  const std::uint32_t idx = (id >> 16) - 1;
  CallSlot& s = calls_[idx];
  s.fn = ReplyFn{};
  s.in_use = false;
  ++s.gen;
  call_free_.push_back(idx);
  --calls_live_;
}

void Engine::complete_call(std::uint32_t id, pami::Result status, const void* data,
                           std::size_t bytes) {
  if (id == 0) return;
  const std::uint32_t idx = (id >> 16) - 1;
  const std::uint16_t gen = static_cast<std::uint16_t>(id & 0xFFFFu);
  if (idx >= calls_.size() || !calls_[idx].in_use || calls_[idx].gen != gen) {
    return;  // stale or duplicate completion
  }
  ReplyFn fn = std::move(calls_[idx].fn);
  calls_[idx].in_use = false;
  ++calls_[idx].gen;
  call_free_.push_back(idx);
  --calls_live_;
  if (fn) fn(status, data, bytes);
}

// ------------------------------------------------------------ flush / poll --

void Engine::flush(pami::Endpoint dest) {
  const std::size_t idx = peer_index(dest);
  Peer& p = peers_[idx];
  drain_peer(idx);
  if (p.agg_records > 0) flush_peer(p, idx, FlushWhy::Explicit);
}

void Engine::flush() {
  for (std::size_t i = 0; i < parked_list_.size(); ++i) drain_peer(parked_list_[i]);
  for (std::size_t i = 0; i < agg_list_.size(); ++i) {
    Peer& p = peers_[agg_list_[i]];
    if (p.agg_records > 0) flush_peer(p, agg_list_[i], FlushWhy::Explicit);
  }
}

std::size_t Engine::poll() {
  std::size_t events = 0;
  // 1. Drain parked per-peer FIFOs as far as credits and FIFO space allow.
  if (!parked_list_.empty()) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < parked_list_.size(); ++i) {
      const std::uint32_t idx = parked_list_[i];
      events += drain_peer(idx);
      if (peers_[idx].q_live() > 0) {
        parked_list_[w++] = idx;
      } else {
        peers_[idx].in_parked_list = false;
      }
    }
    parked_list_.resize(w);
  }
  // 2. Timeout flushes. One clock read per pass, and only when some
  // buffer is actually non-empty — an idle context never reads the clock.
  if (!agg_list_.empty()) {
    const std::uint64_t now = flush_ns_ > 0 ? obs::now_ns() : 0;
    std::size_t w = 0;
    for (std::size_t i = 0; i < agg_list_.size(); ++i) {
      const std::uint32_t idx = agg_list_[i];
      Peer& p = peers_[idx];
      if (p.agg_records > 0 &&
          (flush_ns_ == 0 || now - p.agg_oldest_ns >= flush_ns_)) {
        if (flush_peer(p, idx, FlushWhy::Timeout)) ++events;
      }
      if (p.agg_records > 0) {
        agg_list_[w++] = idx;
      } else {
        p.in_agg_list = false;
      }
    }
    agg_list_.resize(w);
  }
  // 3. Control sends (batched credit returns, hellos) that are due or
  // bounced earlier. These bypass the parked FIFOs by design: a credit
  // return must never queue behind the very sends it would unblock.
  if (!ctl_list_.empty()) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < ctl_list_.size(); ++i) {
      const std::uint32_t idx = ctl_list_[i];
      Peer& p = peers_[idx];
      const bool need = p.hello_due || p.owed >= credit_batch_;
      const bool done = !need || send_ctl(p, idx);
      if (need && done) ++events;
      if (!done) {
        ctl_list_[w++] = idx;
      } else {
        p.in_ctl_list = false;
      }
    }
    ctl_list_.resize(w);
  }
  return events;
}

bool Engine::idle() const {
  return parked_list_.empty() && agg_list_.empty() && ctl_list_.empty();
}

bool Engine::has_pending_state() const { return !idle() || calls_live_ > 0; }

std::size_t Engine::parked_sends() const {
  std::size_t n = 0;
  for (const std::uint32_t idx : parked_list_) n += peers_[idx].q_live();
  return n;
}

bool Engine::quiescent() const { return idle() && calls_live_ == 0; }

// -------------------------------------------------------------------- misc --

std::uint16_t Engine::take_owed(Peer& p) {
  const std::uint32_t n = p.owed > 0xFFFFu ? 0xFFFFu : p.owed;
  p.owed -= n;
  return static_cast<std::uint16_t>(n);
}

std::uint32_t Engine::slab_put(core::Buf b) {
  if (!slab_free_.empty()) {
    const std::uint32_t idx = slab_free_.back();
    slab_free_.pop_back();
    slab_[idx] = std::move(b);
    return idx;
  }
  slab_.push_back(std::move(b));
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

core::Buf Engine::slab_take(std::uint32_t idx) {
  core::Buf b = std::move(slab_[idx]);
  slab_free_.push_back(idx);
  return b;
}

void Engine::slab_release(std::uint32_t idx) {
  slab_[idx].reset();
  slab_free_.push_back(idx);
}

}  // namespace pamix::am
