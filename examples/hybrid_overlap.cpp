// Hybrid overlap — the paper's Figure 2 workload: an MPI+threads
// application where the master thread posts communication, communication
// threads drive it in the background (waking from the wakeup unit), and
// the application computes meanwhile, polling for completion at the end
// of the compute phase.
//
// The pattern here is a pipelined stencil-ish loop: each iteration
// launches the halo exchange for the NEXT block while computing on the
// CURRENT one, with MPI_THREAD_MULTIPLE and commthreads enabled. The run
// reports how much of the communication time was hidden.
//
// Run:  ./hybrid_overlap
#include <cstdio>
#include <numeric>
#include <vector>

#include "mpi/mpi.h"
#include "obs/clock.h"

using namespace pamix;

namespace {

constexpr std::size_t kBlock = 1 << 16;  // doubles per exchange (512KB)
constexpr int kIters = 30;

double run(bool commthreads, double* compute_sink) {
  runtime::Machine machine(hw::TorusGeometry({2, 1, 1, 1, 1}), 1);
  mpi::MpiConfig cfg;
  cfg.commthreads =
      commthreads ? mpi::MpiConfig::Commthreads::ForceOn : mpi::MpiConfig::Commthreads::ForceOff;
  cfg.commthread_count = 1;
  mpi::MpiWorld world(machine, cfg);
  double elapsed_us = 0;
  machine.run_spmd([&](int task) {
    mpi::Mpi& mp = world.at(task);
    mp.init(mpi::ThreadLevel::Multiple);
    const mpi::Comm w = mp.world();
    const int peer = 1 - mp.rank(w);
    std::vector<double> out(kBlock, 1.0), in(kBlock);
    std::vector<double> field(kBlock, 0.5);
    mp.barrier(w);
    obs::Stopwatch sw;
    double acc = 0;
    for (int it = 0; it < kIters; ++it) {
      // Launch this iteration's exchange...
      std::vector<mpi::Request> reqs;
      reqs.push_back(mp.irecv(in.data(), kBlock * sizeof(double), peer, it, w));
      reqs.push_back(mp.isend(out.data(), kBlock * sizeof(double), peer, it, w));
      // ...compute while it flies (commthreads make the progress)...
      for (std::size_t i = 1; i + 1 < kBlock; ++i) {
        field[i] = 0.5 * field[i] + 0.25 * (field[i - 1] + field[i + 1]);
      }
      acc += field[kBlock / 2];
      // ...then complete it and fold the halo in.
      mp.waitall(reqs);
      out.swap(in);
    }
    if (mp.rank(w) == 0) {
      elapsed_us = sw.elapsed_us();
      *compute_sink = acc;
    }
    mp.finalize();
  });
  return elapsed_us;
}

}  // namespace

int main() {
  std::printf("hybrid MPI+threads overlap: %d iterations of 512KB exchange + stencil\n",
              kIters);
  double sink = 0;
  const double without = run(false, &sink);
  const double with = run(true, &sink);
  std::printf("  without commthreads : %8.0f us total\n", without);
  std::printf("  with commthreads    : %8.0f us total\n", with);
  std::printf("  (on a multi-core host the commthread run hides the exchange behind the\n"
              "   stencil; on BG/Q this is the Figure 2 wakeup-unit pattern. sink=%.3f)\n",
              sink);
  return 0;
}
