#include "core/work_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pamix::pami {
namespace {

TEST(WorkQueue, SingleProducerFifoOrder) {
  WorkQueue q(8);
  std::vector<int> ran;
  for (int i = 0; i < 5; ++i) {
    q.post([&ran, i] { ran.push_back(i); });
  }
  EXPECT_EQ(q.advance(), 5u);
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
}

TEST(WorkQueue, OverflowSpillsAndStillRuns) {
  WorkQueue q(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    q.post([&ran] { ran.fetch_add(1); });
  }
  EXPECT_GT(q.overflow_posts(), 0u);
  std::size_t total = 0;
  while (!q.empty()) total += q.advance();
  EXPECT_EQ(ran.load(), 20);
  EXPECT_EQ(total, 20u);
}

TEST(WorkQueue, AdvanceWithMaxCap) {
  WorkQueue q(16);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) q.post([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(q.advance(3), 3u);
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(q.advance(), 7u);
}

TEST(WorkQueue, MultiProducerAllItemsRunExactlyOnce) {
  WorkQueue q(64);
  std::atomic<int> ran{0};
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (!stop.load() || !q.empty()) q.advance();
  });
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) q.post([&ran] { ran.fetch_add(1); });
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true);
  consumer.join();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
}

TEST(WorkQueue, WakeupNotifiedOnPost) {
  hw::WakeupUnit wu;
  WorkQueue q(8, &wu);
  const auto h = wu.watch(q.wakeup_address(), sizeof(std::uint64_t));
  const auto armed = wu.arm(h);
  q.post([] {});
  EXPECT_TRUE(wu.wait_for(h, armed, std::chrono::milliseconds(100)));
  q.advance();
}

TEST(WorkQueue, PostedWorkMayPostMoreWork) {
  WorkQueue q(8);
  std::atomic<int> ran{0};
  q.post([&] {
    ran.fetch_add(1);
    q.post([&] { ran.fetch_add(1); });
  });
  while (!q.empty()) q.advance();
  EXPECT_EQ(ran.load(), 2);
}

// Property sweep: per-producer order is preserved while the array never
// overflows (capacity >= total posts).
class WorkQueueOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorkQueueOrderSweep, PerProducerOrderWithinArray) {
  const int producers = GetParam();
  constexpr int kEach = 50;
  WorkQueue q(4096);
  std::vector<std::vector<int>> seen(static_cast<std::size_t>(producers));
  std::vector<std::thread> ts;
  for (int p = 0; p < producers; ++p) {
    ts.emplace_back([&, p] {
      for (int i = 0; i < kEach; ++i) {
        q.post([&seen, p, i] { seen[static_cast<std::size_t>(p)].push_back(i); });
      }
    });
  }
  for (auto& t : ts) t.join();
  while (!q.empty()) q.advance();
  for (int p = 0; p < producers; ++p) {
    ASSERT_EQ(seen[static_cast<std::size_t>(p)].size(), static_cast<std::size_t>(kEach));
    for (int i = 0; i < kEach; ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)], i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkQueueOrderSweep, ::testing::Values(1, 2, 4, 8));

TEST(WorkQueue, ReentrantAdvanceFromWorkItem) {
  // A posted item may advance the queue re-entrantly (the MPI commthread
  // handoff retries Eagain sends with ctx.advance() inside a work item).
  // The outer drain must notice the slots the nested advance consumed —
  // re-running one would invoke a moved-from callable.
  WorkQueue q(8);
  int ran = 0;
  q.post([&] {
    ++ran;
    q.advance();  // consumes the items below while the outer drain is live
  });
  q.post([&ran] { ++ran; });
  q.post([&ran] { ++ran; });
  while (!q.empty()) q.advance();
  EXPECT_EQ(ran, 3);

  // Same shape through the overflow path: nested advance drains overflow.
  WorkQueue small(2);
  int deep = 0;
  small.post([&] {
    ++deep;
    small.advance();
  });
  for (int i = 0; i < 6; ++i) small.post([&deep] { ++deep; });
  while (!small.empty()) small.advance();
  EXPECT_EQ(deep, 7);
}

TEST(WorkQueue, IndexWraparoundNearUint64Max) {
  // Seed the indices a little below 2^64 and run enough items through that
  // tail, head, bound, and every slot's publication sentinel wrap past
  // zero mid-stream. FIFO order and exactly-once execution must survive.
  WorkQueue q(64);
  const std::uint64_t start = UINT64_MAX - 100000;
  q.debug_seed(start);
  constexpr int kItems = 200001;  // crosses the wrap with margin either side
  int next = 0;
  int posted = 0;
  while (posted < kItems) {
    // Post in bursts larger than the array so the overflow path wraps too.
    const int burst = std::min(100, kItems - posted);
    for (int i = 0; i < burst; ++i) {
      q.post([&next, expect = posted + i] { EXPECT_EQ(next++, expect); });
    }
    posted += burst;
    while (!q.empty()) q.advance();
  }
  EXPECT_EQ(next, kItems);
  EXPECT_TRUE(q.empty());
}

TEST(WorkQueue, WraparoundMultiProducer) {
  WorkQueue q(128);
  q.debug_seed(UINT64_MAX - 500);
  constexpr int kProducers = 4;
  constexpr int kEach = 500;  // 2000 posts total: wrap happens mid-run
  std::atomic<int> ran{0};
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) q.advance();
    while (!q.empty()) q.advance();
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) {
        q.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(ran.load(), kProducers * kEach);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace pamix::pami
