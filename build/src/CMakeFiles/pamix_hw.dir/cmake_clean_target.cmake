file(REMOVE_RECURSE
  "libpamix_hw.a"
)
