file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/test_classroute.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_classroute.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_cnk.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_cnk.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_l2_atomics.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_l2_atomics.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_mu.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_mu.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_torus.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_torus.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_wakeup_unit.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_wakeup_unit.cpp.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
