#include "sim/collective_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pamix::sim {

double CollectiveModel::local_barrier_us(int ppn) const {
  if (ppn <= 1) return 0.0;
  return model_.local_barrier_base_us +
         model_.local_barrier_log_us * std::log2(static_cast<double>(ppn));
}

double CollectiveModel::barrier_latency_us(int ppn) const {
  // GI round: the AND signal propagates up the classroute tree and the
  // release interrupt propagates back down — 2 x depth router hops.
  const double gi_round = 2.0 * world_route_.depth() * model_.hop_latency_us;
  return model_.barrier_sw_us + local_barrier_us(ppn) + gi_round;
}

double CollectiveModel::allreduce_latency_us(int ppn, std::size_t bytes) const {
  // Up-tree combine pays the extra per-hop combine-logic latency; the
  // down-tree broadcast of the result pays plain hop latency.
  const double up = world_route_.depth() * (model_.hop_latency_us + model_.combine_hop_extra_us);
  const double down = world_route_.depth() * model_.hop_latency_us;
  const double wire = 2.0 * model_.packet_serialization_us(bytes);
  double sw;
  if (ppn <= 1) {
    sw = model_.allreduce_sw_solo_us;
  } else {
    // Shared-address mode: peers take over result copy-out (shorter master
    // critical path), but the node-local combine grows with ppn.
    sw = model_.allreduce_sw_shared_us +
         model_.allreduce_local_log_us * std::log2(static_cast<double>(2 * ppn));
  }
  return sw + up + down + wire;
}

double CollectiveModel::net_rate_mb_s(double derate, double ppn_log_derate, int ppn) const {
  const double ppn_derate =
      (ppn > 1) ? ppn_log_derate * std::log2(static_cast<double>(ppn)) : 0.0;
  return model_.link_payload_mb_s * std::max(0.0, derate - ppn_derate);
}

double CollectiveModel::allreduce_time_us(int ppn, std::size_t bytes) const {
  // Working set on a node: each process holds a send and a receive buffer.
  const std::size_t working_set = 2 * bytes * static_cast<std::size_t>(ppn);
  const double touch_bw = model_.copy_bandwidth_mb_s(working_set);
  const double mem_rate = touch_bw / model_.touches_allreduce(ppn);
  double net_rate = net_rate_mb_s(model_.combine_bw_derate, model_.allreduce_ppn_log_derate, ppn);
  // Even at ppn=1 the MU's reads/writes fall to DDR once buffers spill L2.
  if (working_set > model_.l2_bytes && ppn == 1) net_rate *= 0.97;
  const double rate = std::min(net_rate, mem_rate);
  const double fill = allreduce_latency_us(ppn, std::min<std::size_t>(bytes, 512));
  return fill + static_cast<double>(bytes) / rate;
}

double CollectiveModel::allreduce_throughput_mb_s(int ppn, std::size_t bytes) const {
  return static_cast<double>(bytes) / allreduce_time_us(ppn, bytes);
}

double CollectiveModel::bcast_time_us(int ppn, std::size_t bytes) const {
  const std::size_t working_set = bytes * static_cast<std::size_t>(ppn);
  const double touch_bw = model_.copy_bandwidth_mb_s(working_set);
  const double mem_rate = touch_bw / model_.touches_bcast(ppn);
  double net_rate = net_rate_mb_s(model_.bcast_bw_derate, model_.bcast_ppn_log_derate, ppn);
  if (working_set > model_.l2_bytes && ppn == 1) net_rate *= 0.97;
  const double rate = std::min(net_rate, mem_rate);
  const double fill = world_route_.depth() * model_.hop_latency_us + model_.barrier_sw_us +
                      local_barrier_us(ppn);
  return fill + static_cast<double>(bytes) / rate;
}

double CollectiveModel::bcast_throughput_mb_s(int ppn, std::size_t bytes) const {
  return static_cast<double>(bytes) / bcast_time_us(ppn, bytes);
}

double CollectiveModel::software_tree_barrier_us(int radix) const {
  const int n = geom_.node_count();
  if (n <= 1) return 0.0;
  auto edge_us = [&](int a, int b) {
    int hops = 0;
    geom_.for_each_route_link(a, b, [&](const hw::TorusLink&) { ++hops; });
    return model_.network_one_way_us(hops, 1);
  };
  // Up phase: a node's subtree completes when its slowest child's subtree
  // has completed AND that completion message has crossed the torus.
  std::vector<double> up(static_cast<std::size_t>(n), 0.0);
  for (int node = n - 1; node >= 1; --node) {
    const int parent = (node - 1) / radix;
    up[static_cast<std::size_t>(parent)] =
        std::max(up[static_cast<std::size_t>(parent)],
                 up[static_cast<std::size_t>(node)] + edge_us(node, parent));
  }
  // Down phase: the release propagates root-to-leaves; the barrier is over
  // when the last node is released.
  std::vector<double> down(static_cast<std::size_t>(n), 0.0);
  double last = up[0];
  for (int node = 1; node < n; ++node) {
    const int parent = (node - 1) / radix;
    down[static_cast<std::size_t>(node)] =
        down[static_cast<std::size_t>(parent)] + edge_us(parent, node);
    last = std::max(last, up[0] + down[static_cast<std::size_t>(node)]);
  }
  return last;
}

}  // namespace pamix::sim
