// PAMI Context — the unit of messaging parallelism (paper §III-B).
//
// A context is a collection of software communication devices (MU device,
// shared-memory device, work queue) over an exclusive partition of the
// node's hardware: its own injection FIFOs (pinned per destination for
// ordering), its own reception FIFO, its slice of the process's
// shared-memory traffic.  Because nothing is shared between contexts, a
// context needs no internal locks; `advance` is deliberately thread-
// UNSAFE, and thread safety is the caller's job — either pin one thread
// per context, take the context lock, or post work through the lockless
// work queue and let a communication thread run it.
//
// The context itself is a thin composition layer: identity, the dispatch
// table, the work queue, the context lock, and telemetry. Everything that
// moves bytes — protocol selection, packet handling, device progress —
// lives in the proto::ProgressEngine it owns (src/proto/).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/client.h"
#include "core/types.h"
#include "core/work_queue.h"
#include "hw/l2_atomics.h"
#include "obs/pvar.h"
#include "proto/progress_engine.h"

namespace pamix::pami {

class Context {
 public:
  Context(Client& client, int offset);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- Identity -------------------------------------------------------------
  Endpoint endpoint() const { return Endpoint{client_.task(), static_cast<std::int16_t>(offset_)}; }
  int offset() const { return offset_; }
  Client& client() { return client_; }

  // --- Dispatch table -------------------------------------------------------
  Result set_dispatch(DispatchId id, DispatchFn fn);

  // --- Two-sided sends ------------------------------------------------------
  /// Full active-message send: eager below the client's eager limit,
  /// rendezvous (RDMA remote get) above it. Caller owns thread safety.
  /// The lvalue overloads consume `params` only on Success — an Eagain
  /// leaves the (move-only) completion callbacks in place for retry.
  Result send(SendParams& params) { return engine_->send(params); }
  Result send(SendParams&& params) { return engine_->send(params); }

  /// Short-message fast path: header+payload must fit one packet; the
  /// payload is staged immediately so the source buffer is reusable on
  /// return. Returns Eagain only if injection resources stay exhausted.
  Result send_immediate(DispatchId dispatch, Endpoint dest, const void* header,
                        std::size_t header_bytes, const void* data, std::size_t data_bytes);

  // --- One-sided ------------------------------------------------------------
  Result put(PutParams& params) { return engine_->put(params); }
  Result put(PutParams&& params) { return engine_->put(params); }
  Result get(GetParams& params) { return engine_->get(params); }
  Result get(GetParams&& params) { return engine_->get(params); }

  // --- Handoff & progress ---------------------------------------------------
  /// Lockless multi-producer handoff: the work runs on whichever thread
  /// next advances this context (typically a commthread).
  void post(WorkFn fn) { work_queue_.post(std::move(fn)); }

  /// Make progress on every device. NOT thread safe. Returns the number of
  /// events processed (work items, packets, completions).
  std::size_t advance(int iterations = 1) { return engine_->advance(iterations); }

  /// Injection-only progress: drain parked control descriptors and this
  /// context's MU injection FIFOs, nothing else. NOT thread safe (same
  /// single-advancer discipline as advance). Endpoints use it as the
  /// bounded retry step after an Eagain so two endpoints never poll each
  /// other's devices.
  std::size_t advance_injection() { return engine_->advance_injection(); }

  /// Complete a rendezvous that a dispatch handler deferred: pull up to
  /// `bytes` into `buffer` (RDMA remote get) and run `on_complete` when the
  /// data has landed; the sender is acknowledged either way. Must be called
  /// on the thread advancing this context (route through post() otherwise).
  void complete_deferred_rdzv(std::uint64_t handle, void* buffer, std::size_t bytes,
                              EventFn on_complete) {
    engine_->complete_deferred_rdzv(handle, buffer, bytes, std::move(on_complete));
  }

  /// The per-context staging pool feeding eager/RTS streams and shm packet
  /// buffers (telemetry + tests).
  core::BufferPool& stage_pool() { return engine_->stage_pool(); }

  /// Register / unregister an auxiliary progress device (e.g. the
  /// active-message layer's AmDevice) polled after the built-in five.
  /// Caller keeps ownership; must unregister before destroying the device.
  void add_progress_device(proto::Device* dev) { engine_->add_device(dev); }
  void remove_progress_device(proto::Device* dev) { engine_->remove_device(dev); }

  // --- Context lock (PAMI_Context_lock) --------------------------------------
  void lock() { mutex_.lock(); }
  bool trylock() { return mutex_.try_lock(); }
  void unlock() { mutex_.unlock(); }

  // --- Wakeup integration (used by commthreads) ------------------------------
  /// Addresses written when work arrives for this context: the work-queue
  /// tail, the reception FIFO's delivery counter, the shm queue tail.
  std::vector<const void*> wakeup_addresses() const { return engine_->wakeup_addresses(); }

  WorkQueue& work_queue() { return work_queue_; }

  /// Cheap "probably nothing to do" check used by commthreads to decide
  /// whether to sleep on the wakeup unit. May return false negatives under
  /// concurrency; the arm/recheck/wait discipline closes the race.
  bool idle() const { return !engine_->has_pollable_work(); }

  // --- Introspection / stats -------------------------------------------------
  // The historical counters are thin views over the obs pvar registry:
  // sends_initiated keeps its original semantics (one tick per send() call,
  // successful or Eagain-bounced).
  std::uint64_t sends_initiated() const { return engine_->sends_initiated(); }
  std::uint64_t messages_dispatched() const {
    return obs_.pvars.get(obs::Pvar::MessagesDispatched);
  }

  /// This context's telemetry domain (pvar counters + trace ring).
  obs::Domain& obs() { return obs_; }
  const obs::Domain& obs() const { return obs_; }

  /// Telemetry domain of one protocol ("<ctx>.eager" / ".rdzv" / ".shm").
  const obs::Domain& proto_obs(proto::ProtocolKind kind) const {
    return engine_->protocol_obs(kind);
  }

  /// Anything outstanding: pollable device work, origin-side send states,
  /// reassembly and deferred-rendezvous tables. Superset of !idle(),
  /// derived from the same engine predicates so the two cannot drift.
  bool has_pending_state() const { return engine_->has_pending_state(); }

 private:
  friend class Client;

  Client& client_;
  int offset_;
  WorkQueue work_queue_;
  hw::L2AtomicMutex mutex_;
  std::vector<DispatchFn> dispatch_;
  obs::Domain& obs_;  // registry-owned; outlives the context

  // Engine last: it snapshots references to the members above.
  std::unique_ptr<proto::ProgressEngine> engine_;
};

}  // namespace pamix::pami
