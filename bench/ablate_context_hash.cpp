// Ablation — context hashing (paper §IV-A): pamid hashes (destination
// rank, communicator) to a source context and (source rank, communicator)
// to a destination context, so traffic to different peers rides different
// contexts and can be progressed concurrently, while one peer pair stays
// on one ordered channel.
//
// This harness measures the host-side effect: a THREAD_MULTIPLE rank with
// several application threads sending to distinct peers, with 1 context
// (everything serializes on one lock/channel) vs 4 contexts (hashing
// spreads the load). On a many-core host the multi-context build scales;
// on a 1-CPU CI box the numbers converge — the structural point (distinct
// peers -> distinct contexts) is verified either way.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "mpi/mpi.h"

namespace {

using namespace pamix;

/// `match_mode` selects the matcher structure (PAMIX_MPI_MATCH, read at
/// world construction): "bins" is the sharded hashed engine whose shard
/// hash refines this ablation's context hash, "list" the single serialized
/// queue the paper describes.
double run_us(int contexts, const char* match_mode, int sender_threads, int msgs_per_thread) {
  setenv("PAMIX_MPI_MATCH", match_mode, 1);
  runtime::Machine machine(hw::TorusGeometry({5, 1, 1, 1, 1}), 1);
  mpi::MpiConfig cfg;
  cfg.contexts_per_task = contexts;
  cfg.commthreads = mpi::MpiConfig::Commthreads::ForceOff;
  mpi::MpiWorld world(machine, cfg);
  unsetenv("PAMIX_MPI_MATCH");
  double us = 0;
  machine.run_spmd([&](int task) {
    mpi::Mpi& mp = world.at(task);
    mp.init(mpi::ThreadLevel::Multiple);
    const mpi::Comm w = mp.world();
    const int me = mp.rank(w);
    if (me == 0) {
      mp.barrier(w);
      bench::Stopwatch sw;
      std::vector<std::thread> senders;
      for (int t = 0; t < sender_threads; ++t) {
        senders.emplace_back([&, t] {
          const int peer = 1 + t;  // distinct destination per thread
          for (int i = 0; i < msgs_per_thread; ++i) {
            const int v = t * 100000 + i;
            mp.send(&v, sizeof(v), peer, 0, w);
          }
        });
      }
      for (auto& s : senders) s.join();
      us = sw.elapsed_us();
      mp.barrier(w);
    } else {
      mp.barrier(w);
      if (me <= sender_threads) {
        int v;
        for (int i = 0; i < msgs_per_thread; ++i) {
          mp.recv(&v, sizeof(v), 0, 0, w);
        }
      }
      mp.barrier(w);
    }
    mp.finalize();
  });
  return us;
}

}  // namespace

int main() {
  using namespace pamix;
  bench::header("ABLATION — context hashing x matching engine (THREAD_MULTIPLE)");
  constexpr int kThreads = 4;
  const int kMsgs = bench::env_iters("PAMIX_CTXHASH_MSGS", 2000);
  bench::PvarPhase phase;
  const double one_list = run_us(1, "list", kThreads, kMsgs);
  const double one_bins = run_us(1, "bins", kThreads, kMsgs);
  const double four_list = run_us(4, "list", kThreads, kMsgs);
  const double four_bins = run_us(4, "bins", kThreads, kMsgs);
  std::printf("%d sender threads x %d msgs to distinct peers:\n", kThreads, kMsgs);
  std::printf("  1 context  / list : %10.0f us (one channel, serialized queue)\n", one_list);
  std::printf("  1 context  / bins : %10.0f us (one channel, sharded matcher)\n", one_bins);
  std::printf("  4 contexts / list : %10.0f us (hashed channels, serialized queue)\n",
              four_list);
  std::printf("  4 contexts / bins : %10.0f us (hashed channels, sharded matcher)\n",
              four_bins);
  std::printf("  context ratio (bins): %7.2fx   matcher ratio (4 ctx): %7.2fx\n",
              one_bins / four_bins, four_list / four_bins);
  std::printf("(Expect >1 on multi-core hosts; near 1 when the host has a single CPU.)\n");

  const auto delta = phase.delta();
  bench::JsonResult json;
  json.add("us_1ctx_list", one_list);
  json.add("us_1ctx_bins", one_bins);
  json.add("us_4ctx_list", four_list);
  json.add("us_4ctx_bins", four_bins);
  json.add("context_ratio_bins", one_bins / four_bins);
  json.add("matcher_ratio_4ctx", four_list / four_bins);
  json.add("msgs_per_thread", static_cast<std::uint64_t>(kMsgs));
  json.add("mpi.match.bin_hits", delta[obs::Pvar::MpiMatchBinHits]);
  json.add("mpi.match.list_scans", delta[obs::Pvar::MpiMatchListScans]);
  json.add("mpi.match.parked", delta[obs::Pvar::MpiMatchParked]);
  json.add("mpi.match.pool_misses", delta[obs::Pvar::MpiMatchPoolMisses]);
  json.write("BENCH_ctxhash.json");
  bench::obs_finish();
  return 0;
}
