#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "obs/trace_ring.h"

namespace pamix::obs {
namespace {

#if PAMIX_OBS_ENABLED

TEST(TraceRing, EveryEventHasANameAndCategory) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < static_cast<std::size_t>(TraceEv::Count); ++i) {
    const TraceEv ev = static_cast<TraceEv>(i);
    const char* n = trace_ev_name(ev);
    ASSERT_NE(n, nullptr);
    EXPECT_TRUE(names.insert(n).second) << "duplicate trace event name: " << n;
    EXPECT_NE(static_cast<std::uint32_t>(trace_ev_cat(ev)), 0u);
  }
}

TEST(TraceRing, DisabledRingRecordsNothing) {
  TraceRing r;  // never enabled
  EXPECT_FALSE(r.enabled());
  r.record(TraceEv::SendEagerBegin, 1);
  r.record_span(TraceEv::AdvanceBatch, now_ns(), 2);
  EXPECT_EQ(r.recorded(), 0u);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.drain_copy().empty());
}

TEST(TraceRing, RecordsInSingleWriterOrder) {
  TraceRing r;
  r.enable(16);
  for (std::uint32_t i = 0; i < 5; ++i) r.record(TraceEv::SendEagerBegin, i);
  const auto evs = r.drain_copy();
  ASSERT_EQ(evs.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(evs[i].arg, i);  // append order preserved
    EXPECT_EQ(evs[i].type, TraceEv::SendEagerBegin);
    if (i > 0) {
      EXPECT_GE(evs[i].ts_ns, evs[i - 1].ts_ns);  // monotonic stamps
    }
  }
}

TEST(TraceRing, WrapsKeepingTheMostRecentEvents) {
  TraceRing r;
  r.enable(4);
  for (std::uint32_t i = 0; i < 6; ++i) r.record(TraceEv::WorkDrain, i);
  EXPECT_EQ(r.recorded(), 6u);  // total ever written
  EXPECT_EQ(r.size(), 4u);      // ring holds the newest window
  const auto evs = r.drain_copy();
  ASSERT_EQ(evs.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(evs[i].arg, i + 2);  // 2,3,4,5 oldest-first
}

TEST(TraceRing, CategoryMaskFiltersAtRecordTime) {
  TraceRing r;
  r.enable(16, kCatSend);  // only send events pass
  r.record(TraceEv::SendEagerBegin, 1);
  r.record(TraceEv::CommSleep, 2);   // commthread: masked out
  r.record(TraceEv::CollPhase, 3);   // collective: masked out
  r.record(TraceEv::SendComplete, 4);
  const auto evs = r.drain_copy();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].type, TraceEv::SendEagerBegin);
  EXPECT_EQ(evs[1].type, TraceEv::SendComplete);
}

TEST(TraceRing, SpansMeasureElapsedTimeAndClampToU32) {
  TraceRing r;
  r.enable(8);
  const std::uint64_t t0 = now_ns();
  r.record_span(TraceEv::AdvanceBatch, t0, 9);
  // A start far in the "future" (end < start) must not underflow.
  r.record_span(TraceEv::AdvanceBatch, t0 + (1ull << 62), 10);
  // A start > 2^32 ns ago clamps rather than truncating.
  r.record_span(TraceEv::AdvanceBatch, t0 - (10ull << 32), 11);
  const auto evs = r.drain_copy();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].ts_ns, t0);
  EXPECT_EQ(evs[1].dur_ns, 0u);
  EXPECT_EQ(evs[2].dur_ns, UINT32_MAX);
}

#else  // PAMIX_OBS_ENABLED == 0

TEST(TraceRing, CompiledOutTracerIsInertEvenWhenEnabled) {
  TraceRing r;
  r.enable(1024);  // no-op in this build
  EXPECT_FALSE(r.enabled());
  r.record(TraceEv::SendEagerBegin, 1);
  r.record_span(TraceEv::AdvanceBatch, 0, 2);
  r.record_at(TraceEv::WorkDrain, 0, 0, 3);
  EXPECT_EQ(r.recorded(), 0u);
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.capacity(), 0u);
  EXPECT_TRUE(r.drain_copy().empty());
}

#endif

}  // namespace
}  // namespace pamix::obs
