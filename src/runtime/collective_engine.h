// CollectiveNetworkEngine — functional model of the embedded collective
// network's combine/broadcast datapath.
//
// A classroute programmed for reduction accepts one contribution per
// participating node per round; the routers combine contributions flowing
// up the tree and broadcast the result down, RDMA-writing it into each
// node's destination buffer.  Functionally that collapses to: gather all
// contributions for a round, apply the combine op once, copy the result to
// every registered destination, and mark the round complete.  The arm/poll
// interface mirrors the hardware (software injects a descriptor, then
// polls a reception counter), so PAMI's collective code drives this engine
// exactly as it would drive the MU.
//
// Rounds are pipelined: a fast node may contribute to round r+1 while
// stragglers are still completing round r; per-round state is keyed by the
// caller-supplied round number (PAMI sequences collectives per geometry,
// which provides exactly this monotonic round id).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "hw/classroute.h"
#include "obs/pvar.h"

namespace pamix::runtime {

/// Apply a combine op elementwise: acc = acc OP in.
void combine_buffers(hw::CombineOp op, hw::CombineType type, void* acc, const void* in,
                     std::size_t bytes);

class CollectiveNetworkEngine {
 public:
  /// Program the engine for `participants` nodes (one master contribution
  /// per node). Mirrors writing the classroute DCRs.
  explicit CollectiveNetworkEngine(int participants)
      : participants_(participants),
        // The ring is written under mu_, so the serialized contributors
        // satisfy the single-writer contract.
        obs_(obs::Registry::instance().create("collnet", /*pid=*/-1, /*tid=*/0)) {}

  struct Ticket {
    std::uint64_t round = 0;
  };

  /// Contribute this node's data for reduction round `round`.
  /// `result_dest` is where the network RDMA-writes this node's copy of
  /// the combined result (the master's receive buffer).
  /// `on_complete` (optional) runs under no locks after the result lands.
  Ticket contribute_reduce(std::uint64_t round, const void* data, std::size_t bytes,
                           hw::CombineOp op, hw::CombineType type, void* result_dest);

  /// Broadcast round: exactly one contributor (the root's master) supplies
  /// data; every participant still calls in to register its destination
  /// buffer and advance the round.
  Ticket contribute_broadcast(std::uint64_t round, bool is_root, const void* data,
                              std::size_t bytes, void* result_dest);

  /// True once the round of `t` has completed and this node's result has
  /// been written.
  bool done(const Ticket& t) const;

  int participants() const { return participants_; }

 private:
  struct Round {
    int arrived = 0;
    bool is_broadcast = false;
    bool have_op = false;
    hw::CombineOp op = hw::CombineOp::Add;
    hw::CombineType type = hw::CombineType::Double;
    std::size_t bytes = 0;
    std::vector<std::byte> acc;
    std::vector<void*> dests;
    bool complete = false;
  };

  Ticket contribute(std::uint64_t round, bool broadcast, bool provides_data, const void* data,
                    std::size_t bytes, hw::CombineOp op, hw::CombineType type,
                    void* result_dest);

  const int participants_;
  obs::Domain& obs_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Round> rounds_;
  std::uint64_t completed_upto_ = 0;  // rounds below this are complete & erased
};

}  // namespace pamix::runtime
