// Wakeup unit — software model of the BG/Q per-core wakeup unit.
//
// The hardware unit watches physical address ranges; a hardware thread can
// execute the PPC `wait` instruction and is suspended (no pipeline slots, no
// power) until a store from any core, the messaging unit, or the network
// lands in a watched range.  PAMI places its lockless work queues in such
// "wakeup regions" so communication threads sleep with zero polling cost and
// resume the moment work is posted.
//
// Host model: a watch is an (address, length) range with an epoch counter.
// `WakeupUnit::notify_write(addr)` (called by the components that model
// MU / network / peer-core stores into wakeup regions) bumps the epoch of
// every overlapping watch and signals its condition variable.  A waiter
// snapshots the epoch with `arm()`, re-checks its own wake condition, then
// blocks in `wait()` until the epoch moves — the standard lost-wakeup-free
// discipline, equivalent to the hardware's arm-then-wait sequence.
//
// The watch table is fixed-capacity, mirroring the hardware's finite WAC
// register file: slots are created under `mu_`, published with a release
// store on `count_`, and never moved or destroyed until the unit dies.
// That makes every reader path (arm / wait / notify) lock-free on the
// table itself — commthreads arm once per sweep and producers notify per
// store, so a shared table lock there convoys the whole progress engine
// (measured 2× on fig5's commthread phase).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace pamix::hw {

class WakeupUnit {
 public:
  /// Opaque handle to a programmed watch register.
  using WatchHandle = std::size_t;

  /// 4 WAC register pairs per hardware thread × 68 threads on the node.
  static constexpr std::size_t kMaxWatches = 272;

  /// A shared waiter: one sleeping thread parked over many watches, the way
  /// a hardware thread's single `wait` covers all of its WAC registers.
  /// Every watch registered with the slot bumps it on a hit, so the sleeper
  /// learns *that* something fired from the slot and *what* fired by
  /// comparing per-watch epochs against its armed snapshots.
  ///
  /// Slots, like watches, are owned by the unit and never destroyed until
  /// the unit dies: a Watch holds a bare slot pointer, and producers may
  /// notify long after the sleeping thread (e.g. a stopped commthread pool)
  /// has gone away.
  struct WaitSlot {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::uint64_t epoch = 0;  // guarded by mu
  };

  WaitSlot* create_wait_slot() {
    std::lock_guard<std::mutex> g(mu_);
    slots_.push_back(std::make_unique<WaitSlot>());
    return slots_.back().get();
  }

  /// Program a watch over [base, base+len). Returns its handle.
  /// Mirrors writing a WAC (wakeup address compare) register pair.
  WatchHandle watch(const void* base, std::size_t len, WaitSlot* slot = nullptr) {
    return watch_many({{base, len}}, slot);
  }

  /// Program one watch over several ranges (a thread owns multiple WAC
  /// registers on the hardware; any hit wakes it). A non-null `slot` routes
  /// wakeups to the shared waiter instead of the watch's own cv.
  WatchHandle watch_many(std::vector<std::pair<const void*, std::size_t>> ranges,
                         WaitSlot* slot = nullptr) {
    std::lock_guard<std::mutex> g(mu_);
    const std::size_t h = count_.load(std::memory_order_relaxed);
    if (h >= kMaxWatches) {
      std::fprintf(stderr, "WakeupUnit: out of WAC registers (%zu watches)\n", h);
      std::abort();
    }
    watches_[h] = std::make_unique<Watch>();
    Watch& w = *watches_[h];
    w.slot = slot;
    for (const auto& [base, len] : ranges) {
      w.ranges.emplace_back(reinterpret_cast<std::uintptr_t>(base), len);
    }
    // Publish after the slot is fully written: readers that see count_ > h
    // (or that received the handle through thread creation) may touch the
    // Watch without any lock.
    count_.store(h + 1, std::memory_order_release);
    return h;
  }

  /// Snapshot the watch epoch. Call before checking the wake condition.
  /// Lock-free: commthreads snapshot one epoch per owned context before
  /// every sleep, so a mutex here would put a lock round-trip on the idle
  /// transition of every worker.
  std::uint64_t arm(WatchHandle h) const {
    return at(h).epoch.load(std::memory_order_acquire);
  }

  /// Snapshot a shared waiter's epoch before checking the wake condition.
  std::uint64_t arm_slot(const WaitSlot& s) const {
    std::lock_guard<std::mutex> g(s.mu);
    return s.epoch;
  }

  /// Suspend until a write lands in the watched range after `armed_epoch`
  /// was taken (returns immediately if one already has). Models `wait`.
  void wait(WatchHandle h, std::uint64_t armed_epoch) {
    Watch& w = at(h);
    std::unique_lock<std::mutex> g(w.mu);
    w.cv.wait(g, [&] { return w.epoch.load(std::memory_order_acquire) != armed_epoch; });
  }

  /// As `wait` but with a deadline; returns false on timeout. Used by
  /// commthreads that must periodically re-check for shutdown.
  template <class Duration>
  bool wait_for(WatchHandle h, std::uint64_t armed_epoch, Duration d) {
    Watch& w = at(h);
    std::unique_lock<std::mutex> g(w.mu);
    return w.cv.wait_for(
        g, d, [&] { return w.epoch.load(std::memory_order_acquire) != armed_epoch; });
  }

  /// Park on a shared waiter until any of its watches fires after
  /// `armed_epoch` was taken; false on timeout. The slot-level sleep of the
  /// per-context watch scheme: one wait covers every armed watch.
  template <class Duration>
  bool wait_slot(WaitSlot& s, std::uint64_t armed_epoch, Duration d) {
    std::unique_lock<std::mutex> g(s.mu);
    return s.cv.wait_for(g, d, [&] { return s.epoch != armed_epoch; });
  }

  /// Report a store to `addr`: wakes every thread waiting on a watch whose
  /// range contains it.  The producers of wakeup-region data (work-queue
  /// post, MU reception, shared-memory queue append) call this after their
  /// store, modelling the snooped write the hardware sees for free.
  /// Lock-free on the table: ranges are immutable once published.
  void notify_write(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const std::size_t n = count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      Watch& w = *watches_[i];
      for (const auto& [base, len] : w.ranges) {
        if (a >= base && a < base + len) {
          fire(w);
          break;
        }
      }
    }
  }

  /// Wake a specific watch unconditionally (network GI signal, shutdown).
  void notify_watch(WatchHandle h) { fire(at(h)); }

  /// Suppress waiter notification for watch `h`: stores still bump the
  /// epoch (arm/re-check sees them) but no sleeper is woken. A blocking
  /// caller that steals a context's progress (paper §V) mutes the watch
  /// for the steal window — the stealer IS the consumer, so waking the
  /// commthread per store is pure scheduler churn on its way to a trylock
  /// loss. Nestable (counted); the un-muter must re-ring if work remains,
  /// which is what keeps the mute window lost-wakeup-free.
  void mute(WatchHandle h) { at(h).mute_count.fetch_add(1, std::memory_order_acq_rel); }
  void unmute(WatchHandle h) { at(h).mute_count.fetch_sub(1, std::memory_order_acq_rel); }
  bool muted(WatchHandle h) const {
    return at(h).mute_count.load(std::memory_order_acquire) > 0;
  }

  std::size_t watch_count() const { return count_.load(std::memory_order_acquire); }

 private:
  struct Watch {
    std::vector<std::pair<std::uintptr_t, std::size_t>> ranges;
    WaitSlot* slot = nullptr;  // shared waiter, or null → the own cv below
    mutable std::mutex mu;
    std::condition_variable cv;
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<int> mute_count{0};
  };

  /// Bump the watch epoch and wake its waiter. The empty critical section
  /// before notify is the standard fence against a waiter that evaluated
  /// its predicate but has not yet parked: acquiring the same mutex orders
  /// the notify after the waiter is queued on the cv.
  static void fire(Watch& w) {
    w.epoch.fetch_add(1, std::memory_order_release);
    // Muted: record the store in the epoch but let the sleeper sleep. A
    // fire that races the unmute is covered by the un-muter's conditional
    // re-ring (it checks for pending work after dropping the mute).
    if (w.mute_count.load(std::memory_order_acquire) > 0) return;
    if (w.slot != nullptr) {
      {
        std::lock_guard<std::mutex> sg(w.slot->mu);
        ++w.slot->epoch;
      }
      w.slot->cv.notify_all();
    } else {
      { std::lock_guard<std::mutex> wg(w.mu); }
      w.cv.notify_all();
    }
  }

  /// Resolve a handle to its Watch without the registration lock: slots
  /// never move (fixed array) and a handle only reaches a reader after the
  /// release-publish in watch_many (or via thread creation, which also
  /// synchronizes), so the dereference is race-free.
  Watch& at(WatchHandle h) const {
    assert(h < count_.load(std::memory_order_acquire));
    return *watches_[h];
  }

  mutable std::mutex mu_;  // serializes registration only
  std::atomic<std::size_t> count_{0};
  std::array<std::unique_ptr<Watch>, kMaxWatches> watches_;
  std::vector<std::unique_ptr<WaitSlot>> slots_;  // stable: grows under mu_ only
};

}  // namespace pamix::hw
