
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/collective_model.cpp" "src/CMakeFiles/pamix_sim.dir/sim/collective_model.cpp.o" "gcc" "src/CMakeFiles/pamix_sim.dir/sim/collective_model.cpp.o.d"
  "/root/repo/src/sim/des_torus.cpp" "src/CMakeFiles/pamix_sim.dir/sim/des_torus.cpp.o" "gcc" "src/CMakeFiles/pamix_sim.dir/sim/des_torus.cpp.o.d"
  "/root/repo/src/sim/mpi_model.cpp" "src/CMakeFiles/pamix_sim.dir/sim/mpi_model.cpp.o" "gcc" "src/CMakeFiles/pamix_sim.dir/sim/mpi_model.cpp.o.d"
  "/root/repo/src/sim/rect_bcast.cpp" "src/CMakeFiles/pamix_sim.dir/sim/rect_bcast.cpp.o" "gcc" "src/CMakeFiles/pamix_sim.dir/sim/rect_bcast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pamix_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
