file(REMOVE_RECURSE
  "CMakeFiles/global_histogram.dir/global_histogram.cpp.o"
  "CMakeFiles/global_histogram.dir/global_histogram.cpp.o.d"
  "global_histogram"
  "global_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
